package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the shared time source for throughput math: the CLIs' progress
// tickers, the run manifests, and the dist coordinator's ETA all measure
// with the same kind of clock so their rates agree. A nil Clock means
// time.Now; tests inject a fake to pin rate and ETA arithmetic.
type Clock func() time.Time

// Now returns the clock's current time, defaulting to time.Now for a nil
// Clock — callers hold a Clock field and call Now without nil checks.
func (c Clock) Now() time.Time {
	if c == nil {
		return time.Now()
	}
	return c()
}

// DefBuckets is the default histogram bucket ladder: exponential upper
// bounds in seconds from 100µs to ~4 minutes, sized for this repository's
// spread — analytical grid points run ~0.4ms, trace-driven points ~75ms,
// and whole distributed work units run seconds to minutes.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 240,
}

// metric families are one of three types; the constants double as the
// TYPE strings in the exposition format.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families keyed by name. Registration is
// idempotent: asking for an existing family with the same type, label
// names, and (for histograms) buckets returns the same Vec, so layers
// that share a registry (work.Run called per refine phase, the dist
// executor per unit) re-resolve their instruments cheaply. Re-registering
// a name with a different signature panics — that is a programming error,
// not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only; sorted ascending, +Inf implicit

	mu     sync.Mutex
	series map[string]*series
}

// series is one labeled instance of a family. Counters and gauges use
// bits alone (counter: integer count; gauge: float64 bits); histograms
// use counts/sumNanos/count. Atomics keep the record path lock-free.
type series struct {
	values []string

	bits atomic.Uint64
	// fn, when non-nil, backs a gauge evaluated at read time (WithFunc)
	// instead of a stored value — zero hot-path cost for derived gauges
	// like in-flight counts and rates.
	fn func() float64

	counts []atomic.Uint64 // per-bucket (non-cumulative), +Inf last
	// sumNanos accumulates the observation sum in fixed point at 1e-9
	// resolution: a single atomic add per Observe instead of a
	// compare-and-swap loop on float bits, which matters under worker
	// contention on the driver's per-item histogram. Capacity is ±9.2e9
	// in observed units — centuries of second-scale latencies.
	sumNanos atomic.Int64
	count    atomic.Uint64
}

// lookup returns the family registered under name, creating it on first
// use and verifying the signature on every later one.
func (r *Registry) lookup(name, help, typ string, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: metric name must be non-empty")
	}
	for _, l := range labels {
		if l == "" {
			panic(fmt.Sprintf("obs: metric %s has an empty label name", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[string]*family)
	}
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different signature", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// with resolves (creating on first use) the series for the given label
// values. The returned handle is stable: callers resolve once and record
// through atomics thereafter.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	if f.typ == typeHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

// seriesKey joins label values unambiguously (a raw join would collide
// on values containing the separator).
func seriesKey(values []string) string {
	key := ""
	for _, v := range values {
		key += fmt.Sprintf("%d:%s", len(v), v)
	}
	return key
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or re-resolves) a counter family: a monotonically
// increasing integer count per label combination.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or re-resolves) a gauge family: an arbitrary float64
// that goes up and down per label combination.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, typeGauge, labels, nil)}
}

// Histogram registers (or re-resolves) a histogram family with the given
// bucket upper bounds (nil means DefBuckets; +Inf is implicit and must
// not be listed). Bounds must be sorted strictly ascending.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i, ub := range buckets {
		if math.IsInf(ub, +1) {
			panic(fmt.Sprintf("obs: histogram %s lists +Inf explicitly; it is implicit", name))
		}
		if i > 0 && buckets[i-1] >= ub {
			panic(fmt.Sprintf("obs: histogram %s buckets are not strictly ascending", name))
		}
	}
	return &HistogramVec{f: r.lookup(name, help, typeHistogram, labels, buckets)}
}

// CounterVec is a counter family; With resolves one labeled counter.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label
// name, in registration order). Resolve once, record many.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.f.with(values)}
}

// Counter is one labeled series of a counter family.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.s.bits.Add(1) }

// Add adds n (n must be non-negative; counters are monotone).
func (c *Counter) Add(n uint64) { c.s.bits.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.s.bits.Load() }

// GaugeVec is a gauge family; With resolves one labeled gauge.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.f.with(values)}
}

// WithFunc binds the series for the given label values to a read-time
// callback: Snapshot (and therefore every scrape) reports fn() instead
// of a stored value, so derived gauges — in-flight counts, queue depth,
// rates — cost nothing on the hot path. Re-binding the same series
// replaces the callback (a driver run rebinding its gauges supersedes
// the previous run's). fn runs during Snapshot and must not call back
// into the registry.
func (v *GaugeVec) WithFunc(fn func() float64, values ...string) {
	s := v.f.with(values)
	v.f.mu.Lock()
	s.fn = fn
	v.f.mu.Unlock()
}

// Gauge is one labeled series of a gauge family.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract) with a CAS loop, safe for
// concurrent adders.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// HistogramVec is a histogram family; With resolves one labeled
// histogram.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.f.with(values), buckets: v.f.buckets}
}

// Histogram is one labeled series of a histogram family.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one value: a binary search picks the bucket, then
// three atomic adds (bucket count, fixed-point sum, total count).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with ub >= v
	h.s.counts[i].Add(1)
	h.s.sumNanos.Add(int64(math.Round(v * 1e9)))
	h.s.count.Add(1)
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// Sum reads the sum of observed values (1e-9 resolution; see series).
func (h *Histogram) Sum() float64 { return float64(h.s.sumNanos.Load()) / 1e9 }

// Snapshot is a point-in-time copy of a registry, ordered
// deterministically (families by name, series by label values) — the
// test-facing read API and the source the exposition handler renders
// from.
type Snapshot struct {
	Families []FamilySnapshot
}

// FamilySnapshot is one metric family in a snapshot.
type FamilySnapshot struct {
	Name   string
	Help   string
	Type   string // "counter", "gauge", "histogram"
	Labels []string
	Series []SeriesSnapshot
}

// SeriesSnapshot is one labeled series. Value carries counters (as a
// float) and gauges; Histogram is set for histogram families.
type SeriesSnapshot struct {
	LabelValues []string
	Value       float64
	Histogram   *HistogramSnapshot
}

// HistogramSnapshot is one histogram series: cumulative bucket counts
// (the +Inf bucket last, equal to Count), the sum of observations, and
// their total count.
type HistogramSnapshot struct {
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Bucket is one cumulative histogram bucket: the count of observations
// less than or equal to UpperBound.
type Bucket struct {
	UpperBound float64 // +Inf for the last bucket
	Count      uint64
}

// LabelsOf zips a series' label values with its family's label names.
func (f *FamilySnapshot) LabelsOf(s *SeriesSnapshot) map[string]string {
	m := make(map[string]string, len(f.Labels))
	for i, name := range f.Labels {
		m[name] = s.LabelValues[i]
	}
	return m
}

// Snapshot copies the registry's current state. Safe to call while
// writers record; each series is read at some instant during the call.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Type:   f.typ,
			Labels: append([]string(nil), f.labels...),
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{LabelValues: append([]string(nil), s.values...)}
			switch f.typ {
			case typeCounter:
				ss.Value = float64(s.bits.Load())
			case typeGauge:
				if s.fn != nil {
					ss.Value = s.fn()
				} else {
					ss.Value = math.Float64frombits(s.bits.Load())
				}
			case typeHistogram:
				hs := &HistogramSnapshot{
					Sum:     float64(s.sumNanos.Load()) / 1e9,
					Count:   s.count.Load(),
					Buckets: make([]Bucket, len(f.buckets)+1),
				}
				cum := uint64(0)
				for i := range s.counts {
					cum += s.counts[i].Load()
					ub := math.Inf(+1)
					if i < len(f.buckets) {
						ub = f.buckets[i]
					}
					hs.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
				}
				ss.Histogram = hs
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Family returns the named family from the snapshot, or nil.
func (s Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Get returns the series with exactly the given label values from the
// family, or nil.
func (f *FamilySnapshot) Get(values ...string) *SeriesSnapshot {
	if f == nil {
		return nil
	}
	for i := range f.Series {
		if equalStrings(f.Series[i].LabelValues, values) {
			return &f.Series[i]
		}
	}
	return nil
}
