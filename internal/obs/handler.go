package obs

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Handler serves the registry in the Prometheus text exposition format
// (version 0.0.4): `# HELP`/`# TYPE` headers per family, one line per
// series, histograms as cumulative `_bucket{le=...}` plus `_sum` and
// `_count`. Output order is deterministic (families by name, series by
// label values), so scrapes diff cleanly in tests and logs.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		renderText(&b, r.Snapshot())
		_, _ = w.Write([]byte(b.String()))
	})
}

// renderText writes the exposition text for a snapshot.
func renderText(b *strings.Builder, snap Snapshot) {
	for _, f := range snap.Families {
		if f.Help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", f.Name, f.Type)
		for i := range f.Series {
			s := &f.Series[i]
			switch f.Type {
			case typeHistogram:
				h := s.Histogram
				for _, bk := range h.Buckets {
					le := "+Inf"
					if !math.IsInf(bk.UpperBound, +1) {
						le = formatFloat(bk.UpperBound)
					}
					fmt.Fprintf(b, "%s_bucket%s %d\n",
						f.Name, renderLabels(f.Labels, s.LabelValues, "le", le), bk.Count)
				}
				fmt.Fprintf(b, "%s_sum%s %s\n",
					f.Name, renderLabels(f.Labels, s.LabelValues, "", ""), formatFloat(h.Sum))
				fmt.Fprintf(b, "%s_count%s %d\n",
					f.Name, renderLabels(f.Labels, s.LabelValues, "", ""), h.Count)
			case typeCounter:
				fmt.Fprintf(b, "%s%s %d\n",
					f.Name, renderLabels(f.Labels, s.LabelValues, "", ""), uint64(s.Value))
			default: // gauge
				fmt.Fprintf(b, "%s%s %s\n",
					f.Name, renderLabels(f.Labels, s.LabelValues, "", ""), formatFloat(s.Value))
			}
		}
	}
}

// renderLabels renders `{k="v",...}` (empty string when there are no
// labels), with an optional extra pair appended (the histogram `le`).
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way the exposition format expects:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// DebugHandler is the mux every `-metrics-addr` listener serves: the
// registry's text exposition on GET /metrics plus the net/http/pprof
// handlers under /debug/pprof/ — an explicit mux, not http.DefaultServeMux,
// so importing this package never implicitly exposes profiling on a mux
// the caller did not ask for.
func DebugHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":0" picks a free port) and serves DebugHandler(r) in
// a background goroutine. It returns the bound address and a stop
// function that closes the listener and its connections — the `-metrics-addr`
// implementation shared by scenario, figures, and sweepd.
func Serve(addr string, r *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugHandler(r)}
	go func() { _ = srv.Serve(ln) }()
	stop := func() { _ = srv.Close() }
	return ln.Addr().String(), stop, nil
}
