package transient

import (
	"math"
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/sram"
	"repro/internal/units"
)

func TestSingleRCDischarge(t *testing.T) {
	// A 1pF node discharged through 1kohm: V(t) = e^{-t/RC}, tau = 1ns.
	c := New()
	n := c.AddNode("cap", 1e-12)
	if err := c.AddPull(n, 0, 1000, nil); err != nil {
		t.Fatal(err)
	}
	waves, err := c.Simulate([]float64{1}, 5e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Check against the closed form at several points.
	w := waves[n]
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		idx := int(frac * float64(len(w.V)-1))
		want := math.Exp(-w.TimeS[idx] / 1e-9)
		if math.Abs(w.V[idx]-want) > 0.01 {
			t.Errorf("V(%v) = %v, want %v", w.TimeS[idx], w.V[idx], want)
		}
	}
	// 50% crossing at t = RC ln 2.
	cross, err := w.CrossingTime(0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-9 * math.Ln2
	if !units.ApproxEqual(cross, want, 0.02, 0) {
		t.Errorf("50%% crossing = %v, want %v", cross, want)
	}
}

func TestRCCharging(t *testing.T) {
	c := New()
	n := c.AddNode("cap", 1e-12)
	if err := c.AddPull(n, 1.0, 1000, nil); err != nil {
		t.Fatal(err)
	}
	waves, err := c.Simulate([]float64{0}, 5e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := waves[n].CrossingTime(0.63212, true) // 1 - 1/e at t = tau
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(cross, 1e-9, 0.02, 0) {
		t.Errorf("tau crossing = %v, want 1ns", cross)
	}
}

func TestDistributedWireMatchesElmoreBand(t *testing.T) {
	// A 5-segment distributed RC wire driven from a source resistance:
	// Elmore predicts the 50% delay within its usual ~5-15% optimism for
	// distributed lines.
	const (
		rDrive = 5e3
		rWire  = 2e3
		cWire  = 100e-15
		cLoad  = 50e-15
		nSeg   = 5
	)
	c := New()
	var nodes []int
	for i := 0; i < nSeg; i++ {
		capacitance := cWire / nSeg
		if i == nSeg-1 {
			capacitance += cLoad
		}
		nodes = append(nodes, c.AddNode("seg", capacitance))
	}
	if err := c.AddPull(nodes[0], 1.0, rDrive, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < nSeg; i++ {
		if err := c.AddResistor(nodes[i-1], nodes[i], rWire/nSeg); err != nil {
			t.Fatal(err)
		}
	}
	waves, err := c.Simulate(make([]float64, nSeg), 20e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := waves[nodes[nSeg-1]].CrossingTime(0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	elmore := 0.69*rDrive*(cWire+cLoad) + 0.38*rWire*cWire + 0.69*rWire*cLoad
	ratio := got / elmore
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("transient 50%% delay %v vs Elmore %v (ratio %v)", got, elmore, ratio)
	}
}

func TestBitlineDischargeValidatesAnalyticModel(t *testing.T) {
	// Build the actual bitline the cell-array delay model assumes — the
	// full-column capacitance discharged by the cell's read current — and
	// check the analytic time C*dV/I against the simulated waveform.
	tech := device.Default65nm()
	cell := sram.DefaultCell()
	arr := geom.MustOrganize(cachecfg.L1(16*cachecfg.KB), cell)

	for _, op := range []device.OperatingPoint{device.OP(0.20, 10), device.OP(0.50, 14)} {
		cbl := cell.BitlineCapPerCell(tech, op)*float64(arr.Rows) +
			tech.JunctionCap(4*tech.WMin, op) + tech.GateCap(4*tech.WMin, op)
		iread := cell.ReadCurrent(tech, op)
		// Switch-model pull: the cell pulls the bitline down with an
		// effective resistance matched to its small-swing current at Vdd
		// (linearized around the precharged state, valid for a 10% swing).
		rCell := tech.Vdd / iread

		c := New()
		bl := c.AddNode("bitline", cbl)
		if err := c.AddPull(bl, 0, rCell, nil); err != nil {
			t.Fatal(err)
		}
		analytic := cbl * (sram.BitlineSwing * tech.Vdd) / iread
		waves, err := c.Simulate([]float64{tech.Vdd}, 10*analytic, analytic/500)
		if err != nil {
			t.Fatal(err)
		}
		got, err := waves[bl].CrossingTime(tech.Vdd*(1-sram.BitlineSwing), false)
		if err != nil {
			t.Fatal(err)
		}
		// For a 10% swing the linear-current approximation holds within ~6%
		// (the exponential's curvature over the first decile).
		if !units.ApproxEqual(got, analytic, 0.08, 0) {
			t.Errorf("%v: transient bitline delay %v vs analytic %v", op, got, analytic)
		}
	}
}

func TestWordlineChainDelayWithinBand(t *testing.T) {
	// The component model's wordline stage: driver resistance into the
	// distributed wordline. The transient result should bracket the
	// Elmore+effective-current estimate within ~30%.
	tech := device.Default65nm()
	cell := sram.DefaultCell()
	arr := geom.MustOrganize(cachecfg.L1(16*cachecfg.KB), cell)
	op := device.OP(0.25, 11)

	cwl := cell.WordlineCapPerCell(tech, op) * float64(arr.Cols)
	wlLen := arr.WordlineLength(tech, op)
	rWire := tech.WireRPerM * wlLen
	// A driver sized for effort ~4 into the wordline.
	wDrive := 40 * tech.WMin
	rDrive := tech.DriveResistance(device.NMOS, wDrive, op)

	const nSeg = 8
	c := New()
	var nodes []int
	for i := 0; i < nSeg; i++ {
		nodes = append(nodes, c.AddNode("wl", cwl/nSeg))
	}
	if err := c.AddPull(nodes[0], tech.Vdd, rDrive, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < nSeg; i++ {
		if err := c.AddResistor(nodes[i-1], nodes[i], rWire/nSeg); err != nil {
			t.Fatal(err)
		}
	}
	estimate := 0.69*rDrive*cwl + 0.38*rWire*cwl
	waves, err := c.Simulate(make([]float64, nSeg), 20*estimate, estimate/200)
	if err != nil {
		t.Fatal(err)
	}
	got, err := waves[nodes[nSeg-1]].CrossingTime(tech.Vdd/2, true)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := got / estimate; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("wordline transient %v vs estimate %v (ratio %v)", got, estimate, ratio)
	}
}

func TestGatedPull(t *testing.T) {
	// A pull that turns on at t=1ns leaves the node untouched before then.
	c := New()
	n := c.AddNode("x", 1e-12)
	if err := c.AddPull(n, 1, 1000, func(t float64) bool { return t >= 1e-9 }); err != nil {
		t.Fatal(err)
	}
	waves, err := c.Simulate([]float64{0}, 4e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	w := waves[n]
	idx := len(w.V) / 4 // ~1ns
	if w.V[idx-10] > 0.01 {
		t.Errorf("node moved before the gate opened: %v", w.V[idx-10])
	}
	if w.V[len(w.V)-1] < 0.9 {
		t.Errorf("node failed to charge after gating: %v", w.V[len(w.V)-1])
	}
}

func TestErrorPaths(t *testing.T) {
	c := New()
	n := c.AddNode("a", 1e-15)
	if err := c.AddResistor(n, n, 100); err == nil {
		t.Error("self-loop accepted")
	}
	if err := c.AddResistor(n, 99, 100); err == nil {
		t.Error("dangling resistor accepted")
	}
	if err := c.AddResistor(n, n, -5); err == nil {
		t.Error("negative resistance accepted")
	}
	if err := c.AddPull(42, 1, 100, nil); err == nil {
		t.Error("pull on missing node accepted")
	}
	if err := c.AddPull(n, 1, 0, nil); err == nil {
		t.Error("zero pull resistance accepted")
	}
	if _, err := c.Simulate([]float64{1, 2}, 1e-9, 1e-12); err == nil {
		t.Error("mismatched initial voltages accepted")
	}
	if _, err := c.Simulate([]float64{1}, 0, 1e-12); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := New().Simulate(nil, 1e-9, 1e-12); err == nil {
		t.Error("empty circuit accepted")
	}
	bad := New()
	bad.AddNode("zerocap", 0)
	if _, err := bad.Simulate([]float64{0}, 1e-9, 1e-12); err == nil {
		t.Error("zero capacitance accepted")
	}
}

func TestChargeConservationTwoCaps(t *testing.T) {
	// Two equal caps connected by a resistor equilibrate to the mean.
	c := New()
	a := c.AddNode("a", 1e-12)
	b := c.AddNode("b", 1e-12)
	if err := c.AddResistor(a, b, 1000); err != nil {
		t.Fatal(err)
	}
	waves, err := c.Simulate([]float64{1, 0}, 20e-9, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	va := waves[a].V[len(waves[a].V)-1]
	vb := waves[b].V[len(waves[b].V)-1]
	if !units.ApproxEqual(va, 0.5, 0.02, 0) || !units.ApproxEqual(vb, 0.5, 0.02, 0) {
		t.Errorf("caps did not equilibrate: %v, %v", va, vb)
	}
}

func TestNodeIndex(t *testing.T) {
	c := New()
	c.AddNode("x", 1e-15)
	c.AddNode("y", 1e-15)
	if c.NodeIndex("y") != 1 || c.NodeIndex("missing") != -1 || c.Nodes() != 2 {
		t.Error("node bookkeeping broken")
	}
}
