// Package transient is a small time-domain circuit solver used to validate
// the analytical delay models of internal/circuit against first-principles
// waveforms: RC networks driven by switch-model transistors, integrated
// with backward Euler.
//
// It plays the role of a spot-check HSPICE run in the paper's flow: the
// closed-form Elmore and effective-current expressions used everywhere else
// are cross-checked here on the exact structures they approximate —
// bitline discharge through a cell's read path, a driver charging a
// distributed wordline, and an inverter chain. Tests in this package and in
// internal/components assert agreement within the expected error band of
// those approximations.
package transient

import (
	"errors"
	"fmt"
	"math"
)

// Circuit is a lumped network of capacitors (one per node), resistors
// between nodes, and pull devices (switch-model transistors) that drag a
// node toward a rail through an effective resistance.
type Circuit struct {
	names []string
	// capF[i] is node i's capacitance to ground.
	capF []float64
	res  []resistor
	pull []puller
}

type resistor struct {
	a, b int
	ohm  float64
}

// puller models a conducting transistor as a rail voltage behind an
// effective resistance (the switch-level abstraction; adequate for delay).
type puller struct {
	node   int
	railV  float64
	ohm    float64
	signal func(t float64) bool // conducting?
}

// ErrBadNetwork reports an unusable network.
var ErrBadNetwork = errors.New("transient: bad network")

// New creates an empty circuit.
func New() *Circuit { return &Circuit{} }

// AddNode declares a node with a grounded capacitance and returns its index.
func (c *Circuit) AddNode(name string, capF float64) int {
	c.names = append(c.names, name)
	c.capF = append(c.capF, capF)
	return len(c.names) - 1
}

// AddResistor connects two nodes.
func (c *Circuit) AddResistor(a, b int, ohm float64) error {
	if !c.valid(a) || !c.valid(b) || a == b {
		return fmt.Errorf("%w: resistor %d-%d", ErrBadNetwork, a, b)
	}
	if ohm <= 0 {
		return fmt.Errorf("%w: non-positive resistance %v", ErrBadNetwork, ohm)
	}
	c.res = append(c.res, resistor{a: a, b: b, ohm: ohm})
	return nil
}

// AddPull attaches a switch-model device pulling node toward railV through
// ohm whenever signal(t) is true (nil signal = always on).
func (c *Circuit) AddPull(node int, railV, ohm float64, signal func(t float64) bool) error {
	if !c.valid(node) {
		return fmt.Errorf("%w: pull on node %d", ErrBadNetwork, node)
	}
	if ohm <= 0 {
		return fmt.Errorf("%w: non-positive pull resistance %v", ErrBadNetwork, ohm)
	}
	if signal == nil {
		signal = func(float64) bool { return true }
	}
	c.pull = append(c.pull, puller{node: node, railV: railV, ohm: ohm, signal: signal})
	return nil
}

func (c *Circuit) valid(n int) bool { return n >= 0 && n < len(c.names) }

// Waveform is the voltage trajectory of one node.
type Waveform struct {
	TimeS []float64
	V     []float64
}

// CrossingTime returns the first time the waveform crosses the threshold in
// the given direction (rising=false means falling), or an error if it never
// does.
func (w Waveform) CrossingTime(threshold float64, rising bool) (float64, error) {
	for i := 1; i < len(w.V); i++ {
		if rising && w.V[i-1] < threshold && w.V[i] >= threshold ||
			!rising && w.V[i-1] > threshold && w.V[i] <= threshold {
			// Linear interpolation within the step.
			f := (threshold - w.V[i-1]) / (w.V[i] - w.V[i-1])
			return w.TimeS[i-1] + f*(w.TimeS[i]-w.TimeS[i-1]), nil
		}
	}
	return 0, fmt.Errorf("transient: threshold %v never crossed", threshold)
}

// Simulate integrates the network from the initial node voltages over
// duration with the given timestep, returning per-node waveforms. Backward
// Euler via Gauss-Seidel sweeps keeps the integrator unconditionally
// stable for these stiff RC systems.
func (c *Circuit) Simulate(initialV []float64, duration, dt float64) ([]Waveform, error) {
	n := len(c.names)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty circuit", ErrBadNetwork)
	}
	if len(initialV) != n {
		return nil, fmt.Errorf("%w: %d initial voltages for %d nodes", ErrBadNetwork, len(initialV), n)
	}
	if duration <= 0 || dt <= 0 || dt > duration {
		return nil, fmt.Errorf("%w: bad time parameters", ErrBadNetwork)
	}
	for i, cap := range c.capF {
		if cap <= 0 {
			return nil, fmt.Errorf("%w: node %s has non-positive capacitance", ErrBadNetwork, c.names[i])
		}
	}

	steps := int(math.Ceil(duration / dt))
	v := append([]float64(nil), initialV...)
	next := make([]float64, n)
	waves := make([]Waveform, n)
	for i := range waves {
		waves[i].TimeS = append(waves[i].TimeS, 0)
		waves[i].V = append(waves[i].V, v[i])
	}

	// Precompute adjacency for the Gauss-Seidel sweep.
	type link struct {
		other int
		g     float64
	}
	adj := make([][]link, n)
	for _, r := range c.res {
		g := 1 / r.ohm
		adj[r.a] = append(adj[r.a], link{other: r.b, g: g})
		adj[r.b] = append(adj[r.b], link{other: r.a, g: g})
	}
	pullsAt := make([][]puller, n)
	for _, p := range c.pull {
		pullsAt[p.node] = append(pullsAt[p.node], p)
	}

	t := 0.0
	for s := 0; s < steps; s++ {
		t += dt
		copy(next, v)
		// Backward Euler: (C/dt + G) v_next = C/dt v_prev + G_rail*Vrail.
		// Gauss-Seidel iterations on the diagonally dominant system.
		for iter := 0; iter < 50; iter++ {
			maxDelta := 0.0
			for i := 0; i < n; i++ {
				gSum := c.capF[i] / dt
				rhs := c.capF[i] / dt * v[i]
				for _, l := range adj[i] {
					gSum += l.g
					rhs += l.g * next[l.other]
				}
				for _, p := range pullsAt[i] {
					if p.signal(t) {
						g := 1 / p.ohm
						gSum += g
						rhs += g * p.railV
					}
				}
				nv := rhs / gSum
				if d := math.Abs(nv - next[i]); d > maxDelta {
					maxDelta = d
				}
				next[i] = nv
			}
			if maxDelta < 1e-9 {
				break
			}
		}
		copy(v, next)
		for i := range waves {
			waves[i].TimeS = append(waves[i].TimeS, t)
			waves[i].V = append(waves[i].V, v[i])
		}
	}
	return waves, nil
}

// NodeIndex returns the index of a named node, or -1.
func (c *Circuit) NodeIndex(name string) int {
	for i, n := range c.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Nodes returns the number of nodes.
func (c *Circuit) Nodes() int { return len(c.names) }
