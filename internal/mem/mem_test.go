package mem

import "testing"

func TestDefaultsValid(t *testing.T) {
	for _, s := range []Spec{DefaultDDR(), FastDDR()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestFastIsFaster(t *testing.T) {
	if FastDDR().LatencyS >= DefaultDDR().LatencyS {
		t.Error("FastDDR must have lower latency")
	}
	if FastDDR().EnergyJ >= DefaultDDR().EnergyJ {
		t.Error("FastDDR must have lower energy")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Spec{
		{LatencyS: 0, EnergyJ: 1e-9},
		{LatencyS: 1e-9, EnergyJ: 0},
		{LatencyS: 1e-9, EnergyJ: 1e-9, StandbyW: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestMagnitudes(t *testing.T) {
	d := DefaultDDR()
	// 2005-era DDR: tens of ns, nJ-scale access energy.
	if d.LatencyS < 20e-9 || d.LatencyS > 200e-9 {
		t.Errorf("latency %v s implausible", d.LatencyS)
	}
	if d.EnergyJ < 0.5e-9 || d.EnergyJ > 10e-9 {
		t.Errorf("energy %v J implausible", d.EnergyJ)
	}
}
