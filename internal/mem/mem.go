// Package mem models the main-memory (DRAM) level of the paper's "entire
// processor memory system": a fixed access latency and per-access energy.
// Main memory is off-chip in the paper's setting, so its Vth/Tox are not
// decision variables; it enters the optimization only through the AMAT and
// energy terms that L2 misses incur.
package mem

import (
	"fmt"

	"repro/internal/units"
)

// Spec describes the main-memory level.
type Spec struct {
	Name string
	// LatencyS is the full L2-miss service latency (row activation, column
	// access, burst transfer, controller overheads).
	LatencyS float64
	// EnergyJ is the energy of one L2-miss service (DRAM core plus I/O).
	EnergyJ float64
	// StandbyW is the memory subsystem's standby power charged to the
	// system's energy budget (refresh, PLLs, I/O termination).
	StandbyW float64
}

// DefaultDDR returns a DDR-class main memory of the paper's era:
// 50 ns access latency, 2 nJ per access, 50 mW standby.
func DefaultDDR() Spec {
	return Spec{
		Name:     "ddr",
		LatencyS: 50 * units.Nanosecond,
		EnergyJ:  2e-9,
		StandbyW: 50e-3,
	}
}

// FastDDR returns a lower-latency part for sensitivity studies.
func FastDDR() Spec {
	return Spec{
		Name:     "ddr-fast",
		LatencyS: 35 * units.Nanosecond,
		EnergyJ:  1.5e-9,
		StandbyW: 50e-3,
	}
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	if s.LatencyS <= 0 {
		return fmt.Errorf("mem: non-positive latency %v", s.LatencyS)
	}
	if s.EnergyJ <= 0 {
		return fmt.Errorf("mem: non-positive energy %v", s.EnergyJ)
	}
	if s.StandbyW < 0 {
		return fmt.Errorf("mem: negative standby power %v", s.StandbyW)
	}
	return nil
}
