// Package circuit evaluates transistor netlists for total leakage power
// (subthreshold + gate, as in the paper's "total leakage"), switching
// energy, and delay.
//
// It is the HSPICE substitute of this reproduction: the SRAM cell, sense
// amplifier, decoder and driver netlists from internal/sram and
// internal/components are expressed as Netlist values, and this package
// reduces them to watts and seconds at a given (Vth, Tox) operating point.
//
// Leakage is computed from per-transistor DC states (off with a given
// drain-source voltage, or on with a given oxide voltage), with a series
// stack factor applied to subthreshold conduction. Delay uses the method of
// logical effort for gate chains and the Elmore approximation for wires.
package circuit

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// LeakState is the DC state of a transistor for leakage accounting.
type LeakState int

const (
	// StateOff marks a transistor with Vgs=0: it conducts subthreshold
	// current set by its drain bias, plus edge (overlap) gate tunnelling.
	StateOff LeakState = iota
	// StateOn marks a conducting transistor: its full channel area
	// tunnels at the oxide voltage; it contributes no subthreshold leakage.
	StateOn
)

// Element is one transistor (or a probabilistically weighted population of
// identical transistors) inside a netlist.
type Element struct {
	Name   string
	Kind   device.MOSType
	WidthM float64 // width at the reference geometry (scales with Tox)
	State  LeakState
	// VFrac is the relevant voltage as a fraction of Vdd: drain-source for
	// StateOff, oxide voltage for StateOn.
	VFrac float64
	// Stack is the series-stack depth for subthreshold conduction; depth n
	// attenuates subthreshold leakage by StackFactor^(n-1). Minimum 1.
	Stack int
	// Count is the multiplicity. It may be fractional to encode state
	// probabilities (e.g. a NAND input high half the time).
	Count float64
}

// StackFactor is the per-extra-device attenuation of subthreshold leakage in
// a series stack (the well-known "stack effect"; ~5x per device).
const StackFactor = 0.2

// Leakage is a breakdown of leakage power into the two mechanisms the paper
// optimizes jointly.
type Leakage struct {
	SubthresholdW float64
	GateW         float64
}

// Total returns subthreshold + gate leakage in watts.
func (l Leakage) Total() float64 { return l.SubthresholdW + l.GateW }

// Add accumulates o (scaled by count) into l.
func (l *Leakage) Add(o Leakage, count float64) {
	l.SubthresholdW += o.SubthresholdW * count
	l.GateW += o.GateW * count
}

// Netlist is a named collection of elements and child netlists.
type Netlist struct {
	Name     string
	Elements []Element
	Children []Child
}

// Child is a sub-netlist instantiated Count times.
type Child struct {
	Netlist *Netlist
	Count   float64
}

// AddElement appends an element, defaulting Stack and Count sensibly.
func (n *Netlist) AddElement(e Element) {
	if e.Stack < 1 {
		e.Stack = 1
	}
	if e.Count == 0 {
		e.Count = 1
	}
	n.Elements = append(n.Elements, e)
}

// addWeighted appends an element only when its probability weight is
// positive; a zero-probability state must not default to Count=1.
func (n *Netlist) addWeighted(e Element) {
	if e.Count <= 0 {
		return
	}
	n.AddElement(e)
}

// AddChild instantiates sub count times.
func (n *Netlist) AddChild(sub *Netlist, count float64) {
	n.Children = append(n.Children, Child{Netlist: sub, Count: count})
}

// LeakagePower evaluates the netlist's leakage at the operating point.
func (n *Netlist) LeakagePower(t *device.Technology, op device.OperatingPoint) Leakage {
	var total Leakage
	for _, e := range n.Elements {
		total.Add(elementLeakage(t, op, e), e.Count)
	}
	for _, c := range n.Children {
		total.Add(c.Netlist.LeakagePower(t, op), c.Count)
	}
	return total
}

func elementLeakage(t *device.Technology, op device.OperatingPoint, e Element) Leakage {
	var l Leakage
	switch e.State {
	case StateOff:
		vds := e.VFrac * t.Vdd
		isub := t.SubthresholdCurrent(e.Kind, e.WidthM, op, vds)
		if e.Stack > 1 {
			isub *= math.Pow(StackFactor, float64(e.Stack-1))
		}
		l.SubthresholdW = isub * t.Vdd
		// Off transistors still tunnel through the gate-drain overlap.
		l.GateW = t.GateOverlapLeak(e.Kind, e.WidthM, op, vds) * t.Vdd
	case StateOn:
		vox := e.VFrac * t.Vdd
		l.GateW = t.GateLeakCurrent(e.Kind, e.WidthM, op, vox) * t.Vdd
	}
	return l
}

// CountTransistors returns the (weighted) number of transistors in the
// netlist, for reporting and sanity checks.
func (n *Netlist) CountTransistors() float64 {
	var c float64
	for _, e := range n.Elements {
		c += e.Count
	}
	for _, ch := range n.Children {
		c += ch.Netlist.CountTransistors() * ch.Count
	}
	return c
}

// InputCap returns the gate capacitance presented by the listed input
// widths (sum of NMOS+PMOS widths of the first stage) at the operating point.
func InputCap(t *device.Technology, op device.OperatingPoint, widthsM ...float64) float64 {
	var c float64
	for _, w := range widthsM {
		c += t.GateCap(w, op)
	}
	return c
}

// --- Standard gates -------------------------------------------------------

// BetaP is the PMOS/NMOS width ratio used for roughly symmetric inverters.
const BetaP = 2.0

// Inverter returns an inverter netlist with the given NMOS width and
// probability pHigh that the input is high. Leakage states are weighted by
// the input probability: input low leaves the NMOS off (subthreshold) and
// the PMOS on (gate tunnelling); input high is the converse.
func Inverter(name string, wn float64, pHigh float64) *Netlist {
	wp := BetaP * wn
	n := &Netlist{Name: name}
	// Input low (probability 1-pHigh): NMOS off with full Vds, PMOS on.
	n.addWeighted(Element{Name: "mn.off", Kind: device.NMOS, WidthM: wn, State: StateOff, VFrac: 1, Count: 1 - pHigh})
	n.addWeighted(Element{Name: "mp.on", Kind: device.PMOS, WidthM: wp, State: StateOn, VFrac: 1, Count: 1 - pHigh})
	// Input high (probability pHigh): NMOS on, PMOS off with full Vds.
	n.addWeighted(Element{Name: "mn.on", Kind: device.NMOS, WidthM: wn, State: StateOn, VFrac: 1, Count: pHigh})
	n.addWeighted(Element{Name: "mp.off", Kind: device.PMOS, WidthM: wp, State: StateOff, VFrac: 1, Count: pHigh})
	return n
}

// NAND returns a k-input NAND gate netlist with each NMOS of width wn in a
// k-deep stack and k parallel PMOS of width BetaP*wn. pAllHigh is the
// probability that every input is high (output low); the dominant leakage
// state for decoders is "not selected" (output high, NMOS stack blocking),
// which enjoys the stack effect.
func NAND(name string, k int, wn float64, pAllHigh float64) *Netlist {
	if k < 2 {
		panic("circuit: NAND requires k >= 2")
	}
	wp := BetaP * wn
	// Series NMOS are upsized by k to preserve drive.
	wnStack := wn * float64(k)
	n := &Netlist{Name: name}
	pNotSel := 1 - pAllHigh
	// Not selected: NMOS stack off (stack effect), one PMOS on per low input
	// (approximate: one conducting PMOS), others off with ~0 Vds.
	n.addWeighted(Element{Name: "stack.off", Kind: device.NMOS, WidthM: wnStack, State: StateOff, VFrac: 1, Stack: k, Count: pNotSel})
	n.addWeighted(Element{Name: "mp.on", Kind: device.PMOS, WidthM: wp, State: StateOn, VFrac: 1, Count: pNotSel})
	// Selected: all k NMOS on (gate leak each), all PMOS off in parallel.
	n.addWeighted(Element{Name: "stack.on", Kind: device.NMOS, WidthM: wnStack, State: StateOn, VFrac: 1, Count: pAllHigh * float64(k)})
	n.addWeighted(Element{Name: "mp.off", Kind: device.PMOS, WidthM: wp, State: StateOff, VFrac: 1, Count: pAllHigh * float64(k)})
	return n
}

// --- Delay ----------------------------------------------------------------

// Wire is a distributed RC interconnect segment.
type Wire struct {
	LengthM float64
}

// R returns the total wire resistance.
func (w Wire) R(t *device.Technology) float64 { return t.WireRPerM * w.LengthM }

// C returns the total wire capacitance.
func (w Wire) C(t *device.Technology) float64 { return t.WireCPerM * w.LengthM }

// ElmoreDelay returns the 50%-point delay of a driver with effective
// resistance rDrive driving a distributed wire (rWire, cWire) terminated by
// cLoad: 0.69*rDrive*(cWire+cLoad) + 0.38*rWire*cWire + 0.69*rWire*cLoad.
func ElmoreDelay(rDrive, rWire, cWire, cLoad float64) float64 {
	return 0.69*rDrive*(cWire+cLoad) + 0.38*rWire*cWire + 0.69*rWire*cLoad
}

// GateDelay returns the delay of a single gate with effective drive
// resistance from an NMOS of width wDrive, loaded by cLoad plus its own
// parasitic junction capacitance.
func GateDelay(t *device.Technology, op device.OperatingPoint, wDrive, cLoad float64) float64 {
	r := t.DriveResistance(device.NMOS, wDrive, op)
	cj := t.JunctionCap(wDrive*(1+BetaP), op)
	return 0.69 * r * (cLoad + cj)
}

// ChainResult describes an optimally sized buffer chain computed by the
// method of logical effort.
type ChainResult struct {
	Stages      int
	StageEffort float64
	Delay       float64 // seconds
	// TotalWidthM is the summed NMOS width of all stages, used for leakage
	// and area accounting of the chain.
	TotalWidthM float64
	// EnergyPerSwitch is the CV^2 energy of charging all internal stage
	// capacitances plus the load once.
	EnergyPerSwitch float64
}

// parasiticDelay is the intrinsic (self-load) delay of an inverter stage in
// units of Tau.
const parasiticDelay = 1.0

// OptimalChain sizes an inverter chain from input capacitance cIn to load
// cLoad using logical effort, choosing the number of stages that minimizes
// delay with a target stage effort near 4. It returns the chain delay at the
// operating point, along with total device width for leakage accounting.
//
// cIn is the capacitance the chain is allowed to present to its driver; the
// first stage has NMOS width such that its input capacitance equals cIn.
func OptimalChain(t *device.Technology, op device.OperatingPoint, cIn, cLoad float64) ChainResult {
	if cIn <= 0 {
		panic("circuit: OptimalChain requires cIn > 0")
	}
	if cLoad < cIn {
		cLoad = cIn // degenerate: a single minimum stage suffices
	}
	f := cLoad / cIn
	// Number of stages minimizing N*(F^(1/N) + p): near ln(F)/ln(4).
	n := int(math.Round(math.Log(f) / math.Log(4)))
	if n < 1 {
		n = 1
	}
	tau := t.Tau(op)
	best := ChainResult{Stages: -1, Delay: math.Inf(1)}
	for _, cand := range []int{n - 1, n, n + 1} {
		if cand < 1 {
			continue
		}
		effort := math.Pow(f, 1/float64(cand))
		d := float64(cand) * (effort + parasiticDelay) * tau
		if d < best.Delay {
			best = ChainResult{Stages: cand, StageEffort: effort, Delay: d}
		}
	}
	// Stage input caps form a geometric series cIn * effort^i.
	wPerCap := widthPerGateCap(t, op)
	var totalW, totalC float64
	c := cIn
	for i := 0; i < best.Stages; i++ {
		totalW += c * wPerCap / (1 + BetaP) // NMOS share of the stage width
		totalC += c
		c *= best.StageEffort
	}
	best.TotalWidthM = totalW
	best.EnergyPerSwitch = (totalC - cIn + cLoad) * t.Vdd * t.Vdd
	return best
}

// widthPerGateCap returns metres of transistor width per farad of gate
// capacitance at the operating point.
func widthPerGateCap(t *device.Technology, op device.OperatingPoint) float64 {
	return t.WMin / t.GateCap(t.WMin, op)
}

// ChainLeakage returns a netlist representing the leakage of an optimally
// sized chain (its stages modelled as inverters at 50% input probability).
func ChainLeakage(name string, chain ChainResult) *Netlist {
	n := &Netlist{Name: name}
	inv := Inverter(name+".stage", chain.TotalWidthM, 0.5)
	n.AddChild(inv, 1)
	return n
}

// SwitchingEnergy returns the CV^2 energy of one full-swing transition of
// capacitance c, or a partial swing of vFrac*Vdd (bitlines swing ~10%).
func SwitchingEnergy(t *device.Technology, c, vFrac float64) float64 {
	return c * t.Vdd * (vFrac * t.Vdd)
}

// String summarizes the chain for diagnostics.
func (c ChainResult) String() string {
	return fmt.Sprintf("chain{stages=%d effort=%.2f delay=%.3gs}", c.Stages, c.StageEffort, c.Delay)
}
