package circuit_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/units"
)

// A netlist aggregates per-transistor leakage states; evaluating it at two
// operating points shows the knobs at work.
func ExampleNetlist_LeakagePower() {
	tech := device.Default65nm()
	// 1024 identical inverters with balanced input statistics.
	bank := &circuit.Netlist{Name: "bank"}
	bank.AddChild(circuit.Inverter("inv", tech.WMin, 0.5), 1024)

	for _, op := range []device.OperatingPoint{device.OP(0.20, 10), device.OP(0.45, 13)} {
		l := bank.LeakagePower(tech, op)
		fmt.Printf("%v: total=%s\n", op, units.FormatSI(l.Total(), "W"))
	}
	// Output:
	// (Vth=0.20V, Tox=10.0A): total=32.9uW
	// (Vth=0.45V, Tox=13.0A): total=479nW
}

// Logical-effort chain sizing: the delay of driving a big load grows only
// logarithmically once the chain is allowed to widen stage by stage.
func ExampleOptimalChain() {
	tech := device.Default65nm()
	op := device.OP(0.25, 11)
	cin := tech.GateCap(tech.WMin, op)
	for _, fanout := range []float64{16, 256, 4096} {
		res := circuit.OptimalChain(tech, op, cin, fanout*cin)
		fmt.Printf("F=%4.0f: %d stages, %.0f ps\n", fanout, res.Stages, units.ToPS(res.Delay))
	}
	// Output:
	// F=  16: 2 stages, 33 ps
	// F= 256: 4 stages, 67 ps
	// F=4096: 7 stages, 100 ps
}
