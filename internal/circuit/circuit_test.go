package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/units"
)

func tech() *device.Technology { return device.Default65nm() }

func TestInverterLeakageStates(t *testing.T) {
	tc := tech()
	op := device.OP(0.25, 11)

	// With input pinned low, only the NMOS leaks subthreshold and only the
	// PMOS leaks gate current.
	inv := Inverter("inv", tc.WMin, 0)
	l := inv.LeakagePower(tc, op)
	if l.SubthresholdW <= 0 || l.GateW <= 0 {
		t.Fatalf("inverter leakage should be positive: %+v", l)
	}
	wantSub := tc.OffCurrent(device.NMOS, tc.WMin, op)*tc.Vdd +
		0 // PMOS is on, no subthreshold
	// The off NMOS also has overlap gate leakage; subtract to compare.
	if !units.ApproxEqual(l.SubthresholdW, wantSub, 1e-9, 0) {
		t.Errorf("subthreshold = %v, want %v", l.SubthresholdW, wantSub)
	}
}

func TestInverterProbabilityWeighting(t *testing.T) {
	tc := tech()
	op := device.OP(0.3, 12)
	low := Inverter("l", tc.WMin, 0).LeakagePower(tc, op)
	high := Inverter("h", tc.WMin, 1).LeakagePower(tc, op)
	half := Inverter("m", tc.WMin, 0.5).LeakagePower(tc, op)
	wantSub := (low.SubthresholdW + high.SubthresholdW) / 2
	wantGate := (low.GateW + high.GateW) / 2
	if !units.ApproxEqual(half.SubthresholdW, wantSub, 1e-9, 0) ||
		!units.ApproxEqual(half.GateW, wantGate, 1e-9, 0) {
		t.Errorf("p=0.5 leakage %+v, want average of extremes (%v, %v)", half, wantSub, wantGate)
	}
}

func TestInverterLeakageAsymmetry(t *testing.T) {
	tc := tech()
	op := device.OP(0.3, 12)
	low := Inverter("l", tc.WMin, 0).LeakagePower(tc, op)
	high := Inverter("h", tc.WMin, 1).LeakagePower(tc, op)
	// Input high: the wide PMOS (BetaP*wn) leaks subthreshold at PNRatio.
	// Input low: the narrow NMOS leaks. With BetaP=2 and PNRatio=0.5 these
	// happen to match; check both are positive and finite instead of equal.
	for _, l := range []Leakage{low, high} {
		if l.SubthresholdW <= 0 || math.IsInf(l.SubthresholdW, 0) {
			t.Errorf("bad subthreshold leakage: %+v", l)
		}
	}
}

func TestNANDStackEffect(t *testing.T) {
	tc := tech()
	op := device.OP(0.25, 11)
	// A never-selected NAND2 (pAllHigh=0) should leak much less subthreshold
	// than two isolated off NMOS of the same stack width, thanks to the
	// stack factor.
	nand := NAND("nand2", 2, tc.WMin, 0)
	l := nand.LeakagePower(tc, op)
	isolated := tc.OffCurrent(device.NMOS, 2*tc.WMin, op) * tc.Vdd
	if l.SubthresholdW >= isolated {
		t.Errorf("stack effect missing: nand sub %v >= isolated %v", l.SubthresholdW, isolated)
	}
	ratio := l.SubthresholdW / isolated
	if !units.ApproxEqual(ratio, StackFactor, 0.05, 0) {
		t.Errorf("stack attenuation = %v, want ~%v", ratio, StackFactor)
	}
}

func TestNANDSelectedGateLeak(t *testing.T) {
	tc := tech()
	op := device.OP(0.25, 10)
	sel := NAND("sel", 3, tc.WMin, 1).LeakagePower(tc, op)
	unsel := NAND("unsel", 3, tc.WMin, 0).LeakagePower(tc, op)
	// Selected NAND has all NMOS conducting: gate leakage dominates and
	// exceeds the unselected gate leakage.
	if sel.GateW <= unsel.GateW {
		t.Errorf("selected NAND gate leak %v <= unselected %v", sel.GateW, unsel.GateW)
	}
}

func TestNANDPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NAND(k=1) should panic")
		}
	}()
	NAND("bad", 1, 1e-6, 0)
}

func TestNetlistHierarchy(t *testing.T) {
	tc := tech()
	op := device.OP(0.3, 12)
	leaf := Inverter("leaf", tc.WMin, 0.5)
	parent := &Netlist{Name: "parent"}
	parent.AddChild(leaf, 128)
	single := leaf.LeakagePower(tc, op)
	total := parent.LeakagePower(tc, op)
	if !units.ApproxEqual(total.Total(), 128*single.Total(), 1e-9, 0) {
		t.Errorf("hierarchical leakage %v, want 128x leaf %v", total.Total(), single.Total())
	}
	if got := parent.CountTransistors(); got != 128*leaf.CountTransistors() {
		t.Errorf("transistor count %v", got)
	}
}

func TestLeakageMonotoneInKnobs(t *testing.T) {
	tc := tech()
	nl := Inverter("inv", tc.WMin, 0.5)
	f := func(a, b float64) bool {
		fa := math.Abs(math.Mod(a, 1))
		fb := math.Abs(math.Mod(b, 1))
		v1 := tc.VthMin + fa*(tc.VthMax-tc.VthMin)
		v2 := tc.VthMin + fb*(tc.VthMax-tc.VthMin)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		if v1 == v2 {
			return true
		}
		l1 := nl.LeakagePower(tc, device.OperatingPoint{Vth: v1, ToxM: tc.ToxMin}).Total()
		l2 := nl.LeakagePower(tc, device.OperatingPoint{Vth: v2, ToxM: tc.ToxMin}).Total()
		return l1 > l2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("total leakage not decreasing in Vth: %v", err)
	}
}

func TestGateLeakVanishesAtThickOxide(t *testing.T) {
	tc := tech()
	inv := Inverter("inv", tc.WMin, 0.5)
	thin := inv.LeakagePower(tc, device.OP(0.3, 10))
	thick := inv.LeakagePower(tc, device.OP(0.3, 14))
	if thick.GateW >= thin.GateW/10 {
		t.Errorf("gate leakage should collapse with thick oxide: thin %v thick %v", thin.GateW, thick.GateW)
	}
}

func TestElmoreDelay(t *testing.T) {
	// Pure driver into lumped load: 0.69*R*C.
	d := ElmoreDelay(1000, 0, 0, 1e-15)
	if !units.ApproxEqual(d, 0.69e-12, 1e-9, 0) {
		t.Errorf("lumped RC = %v", d)
	}
	// Adding wire resistance increases delay.
	d2 := ElmoreDelay(1000, 500, 1e-15, 1e-15)
	if d2 <= d {
		t.Error("wire RC must add delay")
	}
}

func TestWireRC(t *testing.T) {
	tc := tech()
	w := Wire{LengthM: 100 * units.Micrometre}
	r, c := w.R(tc), w.C(tc)
	if r <= 0 || c <= 0 {
		t.Fatalf("wire R=%v C=%v", r, c)
	}
	// 100um of mid-level wire: ~18 ohm, ~20 fF with default constants.
	if !units.ApproxEqual(r, 18, 1e-6, 0) || !units.ApproxEqual(c, 20e-15, 1e-6, 0) {
		t.Errorf("wire R=%v C=%v, want 18 ohm, 20 fF", r, c)
	}
}

func TestOptimalChainBasic(t *testing.T) {
	tc := tech()
	op := device.OP(0.25, 11)
	cin := tc.GateCap(tc.WMin, op)
	res := OptimalChain(tc, op, cin, 256*cin)
	// F=256 -> ~4 stages of effort 4.
	if res.Stages < 3 || res.Stages > 5 {
		t.Errorf("stages = %d, want 3..5 for F=256", res.Stages)
	}
	if res.Delay <= 0 {
		t.Error("chain delay must be positive")
	}
	if res.TotalWidthM <= 0 || res.EnergyPerSwitch <= 0 {
		t.Errorf("chain accounting: %+v", res)
	}
}

func TestOptimalChainDegenerate(t *testing.T) {
	tc := tech()
	op := device.OP(0.25, 11)
	cin := tc.GateCap(tc.WMin, op)
	res := OptimalChain(tc, op, cin, cin/10) // load smaller than input cap
	if res.Stages != 1 {
		t.Errorf("degenerate chain stages = %d, want 1", res.Stages)
	}
}

func TestOptimalChainPanicsOnZeroCin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OptimalChain(cIn=0) should panic")
		}
	}()
	OptimalChain(tech(), device.OP(0.3, 12), 0, 1e-15)
}

func TestOptimalChainDelayMonotoneInLoad(t *testing.T) {
	tc := tech()
	op := device.OP(0.3, 12)
	cin := tc.GateCap(tc.WMin, op)
	prev := 0.0
	for _, f := range []float64{2, 8, 32, 128, 512, 2048} {
		d := OptimalChain(tc, op, cin, f*cin).Delay
		if d <= prev {
			t.Errorf("chain delay not increasing with load: F=%v d=%v prev=%v", f, d, prev)
		}
		prev = d
	}
}

func TestOptimalChainSlowerAtSlowCorner(t *testing.T) {
	tc := tech()
	cin := tc.GateCap(tc.WMin, device.OP(0.2, 10))
	fast := OptimalChain(tc, device.OP(0.2, 10), cin, 100*cin).Delay
	slow := OptimalChain(tc, device.OP(0.5, 14), cin, 100*cin).Delay
	if slow <= fast {
		t.Errorf("slow corner chain %v <= fast corner %v", slow, fast)
	}
}

func TestGateDelayPositiveAndOrdered(t *testing.T) {
	tc := tech()
	op := device.OP(0.3, 12)
	small := GateDelay(tc, op, tc.WMin, 1e-15)
	big := GateDelay(tc, op, 10*tc.WMin, 1e-15)
	if small <= 0 || big <= 0 {
		t.Fatal("gate delays must be positive")
	}
	if big >= small {
		t.Error("wider driver must be faster into the same load")
	}
}

func TestSwitchingEnergy(t *testing.T) {
	tc := tech()
	full := SwitchingEnergy(tc, 1e-15, 1)
	if !units.ApproxEqual(full, 1e-15, 1e-9, 0) { // C*Vdd^2 with Vdd=1
		t.Errorf("full swing energy = %v", full)
	}
	partial := SwitchingEnergy(tc, 1e-15, 0.1)
	if !units.ApproxEqual(partial, 1e-16, 1e-9, 0) {
		t.Errorf("partial swing energy = %v", partial)
	}
}

func TestChainLeakageScalesWithWidth(t *testing.T) {
	tc := tech()
	op := device.OP(0.25, 11)
	cin := tc.GateCap(tc.WMin, op)
	small := OptimalChain(tc, op, cin, 16*cin)
	large := OptimalChain(tc, op, cin, 4096*cin)
	ls := ChainLeakage("s", small).LeakagePower(tc, op).Total()
	ll := ChainLeakage("l", large).LeakagePower(tc, op).Total()
	if ll <= ls {
		t.Errorf("bigger chain should leak more: %v <= %v", ll, ls)
	}
}

func TestLeakageAdd(t *testing.T) {
	var l Leakage
	l.Add(Leakage{SubthresholdW: 1, GateW: 2}, 3)
	if l.SubthresholdW != 3 || l.GateW != 6 {
		t.Errorf("Add broken: %+v", l)
	}
	if l.Total() != 9 {
		t.Errorf("Total = %v", l.Total())
	}
}

func TestAddElementDefaults(t *testing.T) {
	n := &Netlist{}
	n.AddElement(Element{Kind: device.NMOS, WidthM: 1e-7, State: StateOff, VFrac: 1})
	if n.Elements[0].Count != 1 || n.Elements[0].Stack != 1 {
		t.Errorf("defaults not applied: %+v", n.Elements[0])
	}
}
