package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/sweep"
)

// TestSpecOfDescribesEnv checks SpecOf forwards an EnvDescriber batch's
// environment — and leaves Env empty for self-contained kinds.
func TestSpecOfDescribesEnv(t *testing.T) {
	env := exp.NewQuickEnv()
	eb, err := exp.NewBatch([]string{"fig1", "fig2"}, env)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := SpecOf(eb)
	if err != nil {
		t.Fatal(err)
	}
	var scale exp.Scale
	if err := json.Unmarshal(spec.Env, &scale); err != nil {
		t.Fatalf("spec env %s: %v", spec.Env, err)
	}
	if want := exp.ScaleOf(env); scale != want {
		t.Errorf("spec declares %v, want %v", scale, want)
	}

	if spec, err := SpecOf(toyWorkBatch{}); err != nil || spec.Env != nil {
		t.Errorf("self-contained kind got env %s (err %v)", spec.Env, err)
	}
}

// toyWorkBatch is a minimal work.Batch with no EnvDescriber.
type toyWorkBatch struct{}

func (toyWorkBatch) Kind() string          { return "toy" }
func (toyWorkBatch) Len() int              { return 1 }
func (toyWorkBatch) Hash() (string, error) { return "toyhash", nil }
func (toyWorkBatch) RunItem(context.Context, int) (json.RawMessage, error) {
	return json.RawMessage(`{}`), nil
}
func (toyWorkBatch) MarshalRange(r sweep.Range) (json.RawMessage, error) {
	return json.Marshal(r)
}

// TestWorkerVerifyEnvHardFails pins the fleet-scale agreement: a worker
// whose VerifyEnv rejects the coordinator's declared environment exits
// with that error before executing anything — and without aborting the
// batch, so a correctly configured peer can still finish the sweep.
func TestWorkerVerifyEnvHardFails(t *testing.T) {
	spec := toySpec(4)
	spec.Env = json.RawMessage(`{"accesses":1000000,"seed":1,"min_r2":0.97}`)
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, spec, Config{Units: 2, LeaseTTL: 200 * time.Millisecond})

	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()

	executed := false
	bad := &Worker{
		Coordinator: srv.URL,
		ID:          "misconfigured",
		Client:      srv.Client(),
		Poll:        5 * time.Millisecond,
		VerifyEnv: func(kind string, env json.RawMessage) error {
			if kind != "toy" {
				t.Errorf("VerifyEnv saw kind %q", kind)
			}
			if !strings.Contains(string(env), "1000000") {
				t.Errorf("VerifyEnv saw env %s", env)
			}
			return fmt.Errorf("scale mismatch: fleet wants full, this worker runs -quick")
		},
		Exec: func(ctx context.Context, u Unit) ([][]byte, error) {
			executed = true
			return toyExec(-1)(ctx, u)
		},
	}
	err := bad.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "scale mismatch") {
		t.Fatalf("misconfigured worker returned %v, want the mismatch error", err)
	}
	if executed {
		t.Error("misconfigured worker executed a unit before failing")
	}

	// The batch is not poisoned: a good worker drains it completely once
	// the misconfigured worker's abandoned lease expires.
	good := &Worker{
		Coordinator: srv.URL,
		ID:          "aligned",
		Client:      srv.Client(),
		Poll:        5 * time.Millisecond,
		VerifyEnv:   func(string, json.RawMessage) error { return nil },
		Exec:        toyExec(-1),
	}
	if err := good.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if got := (<-done).String(); got != toyWant(4) {
		t.Errorf("reassembled output = %q, want %q", got, toyWant(4))
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}
