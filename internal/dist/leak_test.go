package dist

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// settleGoroutines snapshots the goroutine count and returns a check that
// fails the test if the count has not returned to the snapshot within a
// grace period (HTTP transport read loops take a moment to wind down after
// connections close).
func settleGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestNoLeakWhenWorkerDies checks the coordinator leaks nothing when a
// worker takes a lease and dies: the batch completes via re-lease and
// every coordinator goroutine exits.
func TestNoLeakWhenWorkerDies(t *testing.T) {
	check := settleGoroutines(t)

	ctx, cancel := context.WithCancel(context.Background())
	c, err := New(ctx, toySpec(6), Config{Units: 3, LeaseTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())

	if lease := leaseRaw(t, srv, "doomed"); lease.Unit == nil {
		t.Fatal("doomed worker got no unit")
	}
	// The doomed worker never heartbeats again; a live one finishes the
	// batch after the lease expires.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range c.Results() {
		}
	}()
	if err := runWorkers(ctx, srv, 1, toyExec(-1)); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	cancel()
	srv.CloseClientConnections()
	srv.Close()
	check()
}

// TestNoLeakWhenConsumerAbandons checks the emitter and workers unwind
// when the result consumer walks away mid-stream: cancelling the run
// context is enough, no draining required.
func TestNoLeakWhenConsumerAbandons(t *testing.T) {
	check := settleGoroutines(t)

	ctx, cancel := context.WithCancel(context.Background())
	// Workers slow enough that the consumer can abandon a running batch.
	slow := func(uctx context.Context, u Unit) ([][]byte, error) {
		if err := sleep(uctx, 10*time.Millisecond); err != nil {
			return nil, err
		}
		return toyExec(-1)(uctx, u)
	}
	c, err := New(ctx, toySpec(32), Config{Units: 16, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())

	workersDone := make(chan error, 1)
	go func() { workersDone <- runWorkers(ctx, srv, 2, slow) }()

	// Read one line, then abandon the stream without draining.
	select {
	case <-c.Results():
	case <-time.After(10 * time.Second):
		t.Fatal("no first result")
	}
	cancel()

	if err := c.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait() = %v, want context.Canceled", err)
	}
	if err := <-workersDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("workers: %v", err)
	}

	srv.CloseClientConnections()
	srv.Close()
	check()
}

// TestNoLeakAcrossManyRuns runs several full coordinator lifecycles and
// checks nothing accumulates — the per-run goroutines (emitter, server,
// workers, heartbeats) all terminate with their run.
func TestNoLeakAcrossManyRuns(t *testing.T) {
	check := settleGoroutines(t)
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		c, err := New(ctx, toySpec(8), Config{Units: 4, LeaseTTL: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(c.Handler())
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range c.Results() {
			}
		}()
		if err := runWorkers(ctx, srv, 3, toyExec(-1)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		<-done
		if err := c.Wait(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cancel()
		srv.CloseClientConnections()
		srv.Close()
	}
	check()
}

// TestWorkerHeartbeatStopsWithUnit pins that a worker's heartbeat loop
// ends with its unit: after Run returns, no heartbeat goroutine survives.
func TestWorkerHeartbeatStopsWithUnit(t *testing.T) {
	check := settleGoroutines(t)
	ctx := t.Context()
	c, err := New(ctx, toySpec(4), Config{Units: 2, LeaseTTL: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range c.Results() {
		}
	}()
	// Slow units force several heartbeats per lease.
	slow := func(uctx context.Context, u Unit) ([][]byte, error) {
		if err := sleep(uctx, 100*time.Millisecond); err != nil {
			return nil, err
		}
		return toyExec(-1)(uctx, u)
	}
	if err := runWorkers(ctx, srv, 2, slow); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	srv.CloseClientConnections()
	srv.Close()
	check()
}
