// Package journal implements the checkpoint journal that lets huge sweep
// batches survive restarts: an append-only NDJSON file whose first line is
// a header pinning the input batch (a content hash plus the item count),
// followed by one entry per completed item carrying the item's input index
// and its exact result line.
//
// The format is deliberately crash-tolerant in one specific way: a process
// killed mid-append leaves a truncated final line, and replay tolerates
// exactly that — the torn line is discarded (and the file truncated back to
// the last complete entry so later appends stay valid NDJSON). Any other
// corruption — a torn line in the middle, an entry index out of range, a
// header that does not parse — is an error, because silently skipping it
// would re-emit or drop results. Resuming against a journal whose batch
// hash does not match the input batch is refused outright: the journal's
// completed lines would belong to a different design space.
//
// Entries carry input indices, not names, so replay order does not matter
// and a distributed coordinator can append unit results out of input order.
// Duplicate entries for one index are legal (a unit re-leased after a slow
// worker finally reported, or a crash between append and lease bookkeeping)
// and replay keeps the first occurrence.
package journal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Version is the journal format version written into headers; Resume
// refuses files written by a different version.
const Version = 1

// Header is the first line of a journal: it pins the input batch so a
// resume against different input fails loudly instead of splicing results
// from two different design spaces.
type Header struct {
	// V is the format version (Version).
	V int `json:"v"`
	// Kind names the payload family, e.g. "scenario-batch"; resuming a
	// journal of one kind against input of another is refused.
	Kind string `json:"kind"`
	// BatchSHA256 is the hex content hash of the canonical input batch.
	BatchSHA256 string `json:"batch_sha256"`
	// N is the number of items in the batch; entry indices live in [0, N).
	N int `json:"n"`
}

// entry is one completed item: its input index and the exact NDJSON result
// line (compact JSON, no trailing newline).
type entry struct {
	I    int             `json:"i"`
	Line json.RawMessage `json:"line"`
}

// Hash renders v as canonical JSON and returns the hex SHA-256 — the
// content hash stored in headers. Two batches hash equal exactly when their
// JSON forms are byte-identical.
func Hash(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("journal: hashing batch: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Journal is an open checkpoint file. Record appends entries; all methods
// are safe only for one goroutine at a time (callers serialize — the
// coordinator appends under its state lock, the single-process stream
// appends from the emitting loop).
type Journal struct {
	f *os.File
}

// Create starts a fresh journal at path, truncating any previous file, and
// writes the header.
func Create(path string, h Header) (*Journal, error) {
	h.V = Version
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	line, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Resume opens an existing journal, verifies its header against want
// (version, kind, batch hash, item count), and replays the completed
// entries. It returns the journal positioned for appending and the replayed
// lines keyed by input index. A truncated final line is discarded and the
// file truncated back to the last complete entry; duplicate indices keep
// the first occurrence.
func Resume(path string, want Header) (*Journal, map[int]json.RawMessage, error) {
	want.V = Version
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	done, keep, err := replay(f, want)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn tail (if any) so appends continue valid NDJSON.
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f}, done, nil
}

// Replay reads a journal without modifying it: it verifies the header
// against want and returns the completed lines keyed by input index — the
// read side of the format, for reassembling a result set from a finished
// (or partial) checkpoint. Unlike Resume it opens the file read-only and
// leaves a torn final line in place (still discarding it from the result),
// so it is safe to run against a journal another process is appending to.
func Replay(path string, want Header) (map[int]json.RawMessage, error) {
	want.V = Version
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	done, _, err := replay(f, want)
	return done, err
}

// ReadFile replays a journal against its own header — the read side for
// callers that trust the file's identity instead of asserting one, like
// the dist store reading a sibling batch's journal that its item index
// references. It returns the parsed header alongside the completed lines;
// format-version, torn-final-line, and duplicate-entry rules match Replay.
func ReadFile(path string) (Header, map[int]json.RawMessage, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, fmt.Errorf("journal: %w", err)
	}
	headLine, err := bufio.NewReader(f).ReadBytes('\n')
	f.Close()
	if err != nil {
		return Header{}, nil, fmt.Errorf("journal: unreadable header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(headLine, &h); err != nil {
		return Header{}, nil, fmt.Errorf("journal: malformed header: %w", err)
	}
	// Replay re-reads the file verifying against the header it declares
	// itself — a tautology for kind/hash/N, but the version check and the
	// body validation still apply.
	done, err := Replay(path, h)
	if err != nil {
		return Header{}, nil, err
	}
	return h, done, nil
}

// Open is the front door for checkpointed runs: with resume false it always
// starts fresh (Create); with resume true it resumes an existing journal,
// or starts fresh when none exists yet — so one command line serves both
// the first run and every restart.
func Open(path string, h Header, resume bool) (*Journal, map[int]json.RawMessage, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			return Resume(path, h)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
	}
	j, err := Create(path, h)
	if err != nil {
		return nil, nil, err
	}
	return j, nil, nil
}

// replay scans the journal body, returning the completed lines and the file
// offset just past the last complete line (where appending must continue).
func replay(f *os.File, want Header) (map[int]json.RawMessage, int64, error) {
	r := bufio.NewReader(f)
	var offset int64

	headLine, err := r.ReadBytes('\n')
	if err != nil {
		return nil, 0, fmt.Errorf("journal: unreadable header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(headLine, &h); err != nil {
		return nil, 0, fmt.Errorf("journal: malformed header: %w", err)
	}
	switch {
	case h.V != want.V:
		return nil, 0, fmt.Errorf("journal: format version %d, want %d", h.V, want.V)
	case h.Kind != want.Kind:
		return nil, 0, fmt.Errorf("journal: kind %q, want %q", h.Kind, want.Kind)
	case h.BatchSHA256 != want.BatchSHA256:
		return nil, 0, fmt.Errorf("journal: batch hash mismatch: journal has %s, input batch is %s (refusing to resume against a different batch)", h.BatchSHA256, want.BatchSHA256)
	case h.N != want.N:
		return nil, 0, fmt.Errorf("journal: batch has %d items, journal expects %d", want.N, h.N)
	}
	offset += int64(len(headLine))

	done := make(map[int]json.RawMessage)
	for {
		line, err := r.ReadBytes('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			return nil, 0, fmt.Errorf("journal: %w", err)
		}
		if atEOF {
			// No trailing newline: either a clean EOF (empty tail) or the
			// torn final line of a crashed append. Both are discarded —
			// Resume truncates the file back to offset.
			return done, offset, nil
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, 0, fmt.Errorf("journal: corrupt entry at byte %d: %w", offset, err)
		}
		if e.I < 0 || e.I >= h.N {
			return nil, 0, fmt.Errorf("journal: entry index %d out of range [0, %d)", e.I, h.N)
		}
		if _, dup := done[e.I]; !dup {
			compact := &bytes.Buffer{}
			if err := json.Compact(compact, e.Line); err != nil {
				return nil, 0, fmt.Errorf("journal: corrupt entry line at byte %d: %w", offset, err)
			}
			done[e.I] = json.RawMessage(compact.Bytes())
		}
		offset += int64(len(line))
	}
}

// Stats summarizes a checkpoint journal: what it pins (kind, batch hash,
// item count) and how far it got (distinct completed indices) — the
// offline twin of the coordinator's /v1/status, computable from the file
// alone.
type Stats struct {
	Kind        string `json:"kind"`
	BatchSHA256 string `json:"batch_sha256"`
	// N is the batch size; Done counts distinct completed indices.
	N    int `json:"n"`
	Done int `json:"items_done"`
	// Complete reports Done == N: the journal holds every result line.
	Complete bool `json:"complete"`
	// TornTail reports a truncated final line — the signature of a run
	// killed mid-append. Harmless (a resume discards it), but worth
	// surfacing to an operator wondering why a run stopped.
	TornTail bool `json:"torn_tail,omitempty"`
}

// Stat scans a journal and counts completed items without retaining a
// single result line — O(N/8) memory (a seen-index bitset) however large
// the results are, so it is safe to point at a multi-gigabyte checkpoint.
// Unlike Replay it needs no expected header: the summary describes
// whatever batch the file itself pins. Corruption rules match Replay —
// a torn final line is tolerated (and reported), anything else errors.
func Stat(path string) (Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Stats{}, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)

	headLine, err := r.ReadBytes('\n')
	if err != nil {
		return Stats{}, fmt.Errorf("journal: unreadable header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(headLine, &h); err != nil {
		return Stats{}, fmt.Errorf("journal: malformed header: %w", err)
	}
	if h.V != Version {
		return Stats{}, fmt.Errorf("journal: format version %d, want %d", h.V, Version)
	}
	if h.N <= 0 {
		return Stats{}, fmt.Errorf("journal: header item count %d", h.N)
	}

	st := Stats{Kind: h.Kind, BatchSHA256: h.BatchSHA256, N: h.N}
	seen := make([]uint64, (h.N+63)/64)
	offset := int64(len(headLine))
	for {
		line, err := r.ReadBytes('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			return Stats{}, fmt.Errorf("journal: %w", err)
		}
		if atEOF {
			st.TornTail = len(line) > 0
			st.Complete = st.Done == st.N
			return st, nil
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			return Stats{}, fmt.Errorf("journal: corrupt entry at byte %d: %w", offset, err)
		}
		if e.I < 0 || e.I >= h.N {
			return Stats{}, fmt.Errorf("journal: entry index %d out of range [0, %d)", e.I, h.N)
		}
		if seen[e.I/64]&(1<<(e.I%64)) == 0 {
			seen[e.I/64] |= 1 << (e.I % 64)
			st.Done++
		}
		offset += int64(len(line))
	}
}

// Record appends one completed item: its input index and its exact result
// line (compact JSON, no trailing newline). The append is a single write
// syscall, so a crash leaves at worst one torn final line — which Resume
// tolerates.
func (j *Journal) Record(i int, line []byte) error {
	e := entry{I: i, Line: json.RawMessage(line)}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Sync flushes the journal to stable storage. Record does not sync per
// entry (results are recomputable; the journal is an optimization, not a
// durability contract) — callers that want a hard flush point call Sync.
func (j *Journal) Sync() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
