package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHeader(n int) Header {
	return Header{Kind: "test-batch", BatchSHA256: "abc123", N: n}
}

// write creates a journal at path with the given entries recorded.
func write(t *testing.T, path string, h Header, lines map[int]string) {
	t.Helper()
	j, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic order for reproducible files.
	for i := 0; i < h.N; i++ {
		if line, ok := lines[i]; ok {
			if err := j.Record(i, []byte(line)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(3)
	write(t, path, h, map[int]string{0: `{"name":"a"}`, 2: `{"name":"c"}`})

	j, done, err := Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(done) != 2 || string(done[0]) != `{"name":"a"}` || string(done[2]) != `{"name":"c"}` {
		t.Fatalf("replayed %v", done)
	}
	if _, ok := done[1]; ok {
		t.Fatal("index 1 was never recorded but replayed")
	}

	// Appending after resume continues the journal.
	if err := j.Record(1, []byte(`{"name":"b"}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, done, err = Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 || string(done[1]) != `{"name":"b"}` {
		t.Fatalf("after append, replayed %v", done)
	}
}

// TestTruncatedFinalLine checks the crash case the format is designed for:
// a torn final line is discarded, replay succeeds, and the file is
// truncated so further appends produce valid NDJSON.
func TestTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(3)
	write(t, path, h, map[int]string{0: `{"name":"a"}`})

	// Simulate a crash mid-append: a partial entry with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":1,"line":{"na`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j, done, err := Resume(path, h)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if len(done) != 1 || string(done[0]) != `{"name":"a"}` {
		t.Fatalf("replayed %v", done)
	}
	// The torn tail must be gone: appending and re-replaying works.
	if err := j.Record(1, []byte(`{"name":"b"}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, done, err = Resume(path, h)
	if err != nil {
		t.Fatalf("resume after torn-tail truncation: %v", err)
	}
	if len(done) != 2 || string(done[1]) != `{"name":"b"}` {
		t.Fatalf("after truncation + append, replayed %v", done)
	}
}

// TestReplayReadOnly checks the read side: Replay verifies the header and
// returns the completed lines, tolerates a torn final line, and — unlike
// Resume — leaves the file byte-for-byte untouched, so it is safe against
// a journal another process is still appending to.
func TestReplayReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(3)
	write(t, path, h, map[int]string{0: `{"name":"a"}`, 1: `{"name":"b"}`})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":2,"line":{"na`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	done, err := Replay(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || string(done[0]) != `{"name":"a"}` || string(done[1]) != `{"name":"b"}` {
		t.Fatalf("replayed %v", done)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("Replay modified the journal file")
	}

	// The same header checks as Resume apply.
	if _, err := Replay(path, Header{Kind: "test-batch", BatchSHA256: "different", N: 3}); err == nil ||
		!strings.Contains(err.Error(), "batch hash mismatch") {
		t.Fatalf("hash mismatch must be refused, got %v", err)
	}
}

// TestCorruptMiddleLine checks that a torn line anywhere but the tail is an
// error — skipping it would silently drop a completed result.
func TestCorruptMiddleLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(3)
	write(t, path, h, map[int]string{0: `{"name":"a"}`})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte("{\"i\":1,\"line\":{\"na\n")...)
	data = append(data, []byte("{\"i\":2,\"line\":{\"name\":\"c\"}}\n")...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, h); err == nil || !strings.Contains(err.Error(), "corrupt entry") {
		t.Fatalf("corrupt middle line must fail replay, got %v", err)
	}
}

// TestDuplicateEntries checks duplicate indices (a re-leased unit reporting
// twice, or matching duplicate scenario names journaled under one index)
// replay as the first occurrence, once.
func TestDuplicateEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(2)
	j, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(0, []byte(`{"name":"dup","v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(0, []byte(`{"name":"dup","v":2}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, done, err := Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("want 1 replayed index, got %d", len(done))
	}
	if string(done[0]) != `{"name":"dup","v":1}` {
		t.Fatalf("duplicate replay must keep the first occurrence, got %s", done[0])
	}
}

// TestHashMismatchRefused checks resuming against a different batch fails
// with a clear diagnostic instead of splicing unrelated results.
func TestHashMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	write(t, path, testHeader(2), map[int]string{0: `{"name":"a"}`})

	other := testHeader(2)
	other.BatchSHA256 = "def456"
	_, _, err := Resume(path, other)
	if err == nil || !strings.Contains(err.Error(), "batch hash mismatch") {
		t.Fatalf("hash mismatch must refuse resume, got %v", err)
	}
	if !strings.Contains(err.Error(), "refusing to resume") {
		t.Fatalf("diagnostic should explain the refusal, got %v", err)
	}
}

func TestHeaderMismatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	write(t, path, testHeader(2), nil)

	wrongKind := testHeader(2)
	wrongKind.Kind = "experiments"
	if _, _, err := Resume(path, wrongKind); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("kind mismatch: %v", err)
	}
	wrongN := testHeader(5)
	if _, _, err := Resume(path, wrongN); err == nil || !strings.Contains(err.Error(), "items") {
		t.Fatalf("count mismatch: %v", err)
	}
}

func TestEntryIndexOutOfRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(2)
	write(t, path, h, nil)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":7,"line":{"name":"x"}}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := Resume(path, h); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range index must fail replay, got %v", err)
	}
}

// TestOpenFrontDoor checks Open's resume semantics: fresh file without
// resume, fresh file with resume when none exists, replay when one does.
func TestOpenFrontDoor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(2)

	j, done, err := Open(path, h, true) // resume with no journal yet: fresh
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("fresh journal replayed %v", done)
	}
	if err := j.Record(0, []byte(`{"name":"a"}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j, done, err = Open(path, h, true) // resume with a journal: replay
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(done) != 1 {
		t.Fatalf("resume replayed %v", done)
	}

	j, done, err = Open(path, h, false) // no resume: truncate and restart
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(done) != 0 {
		t.Fatalf("fresh open replayed %v", done)
	}
}

// TestStat checks the no-input summary scan: counts are distinct (dups
// collapse), the header fields come from the file itself, a torn tail is
// reported rather than fatal, and completion flips exactly at done == n.
func TestStat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(3)
	write(t, path, h, map[int]string{0: `{"name":"a"}`, 2: `{"name":"c"}`})

	st, err := Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{Kind: "test-batch", BatchSHA256: "abc123", N: 3, Done: 2}
	if st != want {
		t.Fatalf("Stat = %+v, want %+v", st, want)
	}

	// A duplicate entry must not inflate the count; completing the last
	// index flips Complete.
	j, _, err := Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(0, []byte(`{"name":"a","again":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(1, []byte(`{"name":"b"}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	st, err = Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 3 || !st.Complete {
		t.Fatalf("after dup + final entry: %+v", st)
	}

	// A torn final line is reported, not counted, not fatal.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":1,"line":{"na`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st, err = Stat(path)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if st.Done != 3 || !st.TornTail {
		t.Fatalf("torn tail: %+v", st)
	}
}

// TestStatErrors checks Stat shares Replay's corruption rules even though
// it verifies no expected header: bad version, corrupt middle entries, and
// out-of-range indices are loud errors.
func TestStatErrors(t *testing.T) {
	dir := t.TempDir()

	badVersion := filepath.Join(dir, "version.journal")
	if err := os.WriteFile(badVersion, []byte(`{"v":99,"kind":"k","batch_sha256":"x","n":2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Stat(badVersion); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch: %v", err)
	}

	corrupt := filepath.Join(dir, "corrupt.journal")
	write(t, corrupt, testHeader(3), map[int]string{0: `{"name":"a"}`})
	data, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte("{\"i\":1,\"line\":{\"na\n{\"i\":2,\"line\":{\"name\":\"c\"}}\n")...)
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Stat(corrupt); err == nil || !strings.Contains(err.Error(), "corrupt entry") {
		t.Fatalf("corrupt middle line: %v", err)
	}

	outOfRange := filepath.Join(dir, "range.journal")
	write(t, outOfRange, testHeader(2), nil)
	f, err := os.OpenFile(outOfRange, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":7,"line":{"name":"x"}}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Stat(outOfRange); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range index: %v", err)
	}
}

func TestHashStability(t *testing.T) {
	type batch struct {
		Names []string `json:"names"`
	}
	h1, err := Hash(batch{Names: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash(batch{Names: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	h3, err := Hash(batch{Names: []string{"a", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("hash must be deterministic")
	}
	if h1 == h3 {
		t.Fatal("different batches must hash differently")
	}
	if len(h1) != 64 {
		t.Fatalf("want hex sha256, got %q", h1)
	}
}

// TestJournalIsNDJSON pins the on-disk format: every line of a journal is
// one standalone JSON document.
func TestJournalIsNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	h := testHeader(2)
	write(t, path, h, map[int]string{0: `{"name":"a"}`, 1: `{"name":"b"}`})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 entries, got %d lines", len(lines))
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("line %d is not JSON: %q", i, line)
		}
	}
}
