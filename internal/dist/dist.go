package dist

import (
	"encoding/json"

	"repro/internal/sweep"
)

// Unit is one leasable work unit: a contiguous range of the batch's input
// indices plus the self-contained payload a worker needs to execute them.
// Units carry everything over the wire — workers share no filesystem or
// configuration with the coordinator.
type Unit struct {
	// ID is the unit's index in the coordinator's shard list.
	ID int `json:"id"`
	// Range is the half-open input-index interval this unit covers.
	Range sweep.Range `json:"range"`
	// Kind names the payload family (a work-registry kind, e.g.
	// "scenario-batch") so an executor can refuse units it does not
	// understand.
	Kind string `json:"kind"`
	// Payload is the kind-specific work description.
	Payload json.RawMessage `json:"payload"`
	// Batch identifies the batch this unit belongs to in service mode
	// (the store's kind-hash batch ID); workers echo it on heartbeats,
	// results, and failure reports so a multi-batch service can route
	// them. One-shot coordinators leave it empty, and the field is
	// omitted — the single-batch protocol is unchanged on the wire.
	Batch string `json:"batch,omitempty"`
}

// Spec describes a divisible batch to the coordinator: how many ordered
// items it has, how to render the payload for a contiguous range of them,
// and the content hash that pins the input across restarts.
type Spec struct {
	// Kind tags the payload family of every unit.
	Kind string
	// Hash is the canonical content hash of the input batch
	// (journal.Hash); it keys checkpoint resume.
	Hash string
	// N is the number of ordered items.
	N int
	// Payload renders the work description for one contiguous item range.
	Payload func(r sweep.Range) (json.RawMessage, error)
	// Env, when non-nil, describes process-wide environment state the
	// batch's output depends on (work.EnvDescriber — the experiments
	// kind's simulation scale). It rides along with every granted lease so
	// workers can refuse units their local environment would compute
	// differently.
	Env json.RawMessage
}

// leaseRequest is the body of POST /v1/lease.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse is the coordinator's answer to a lease request: a unit to
// execute, a backoff hint when everything is currently leased, or done.
type LeaseResponse struct {
	// Done reports that no more work will ever be handed out: the batch
	// completed, failed, or the coordinator is shutting down. Workers exit.
	Done bool `json:"done"`
	// Unit is the leased work unit, nil when Done or when all remaining
	// units are leased to other workers.
	Unit *Unit `json:"unit,omitempty"`
	// Env, present only alongside Unit, is the coordinator's declared
	// environment for the batch (Spec.Env) — for the experiments kind,
	// the simulation scale the batch hash pins. Workers with a VerifyEnv
	// hook check it against their local environment and hard-fail on
	// mismatch instead of silently blending scales into one result set.
	Env json.RawMessage `json:"env,omitempty"`
	// LeaseTTLMS is the lease duration; workers heartbeat a few times per
	// TTL to keep the lease alive.
	LeaseTTLMS int64 `json:"lease_ttl_ms,omitempty"`
	// RetryAfterMS hints how long to wait before the next lease request
	// when no unit is available.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// heartbeatRequest is the body of POST /v1/heartbeat. Batch scopes the
// unit ID in service mode; one-shot coordinators ignore it.
type heartbeatRequest struct {
	Worker string `json:"worker"`
	Unit   int    `json:"unit"`
	Batch  string `json:"batch,omitempty"`
}

// failRequest is the body of POST /v1/fail: a deterministic execution
// failure that should abort the whole batch (retrying deterministic work
// elsewhere would only fail again). Batch scopes the unit ID in service
// mode, where the failure aborts that one batch, not the service.
type failRequest struct {
	Worker string `json:"worker"`
	Unit   int    `json:"unit"`
	Error  string `json:"error"`
	Batch  string `json:"batch,omitempty"`
}

// Status is the GET /v1/status snapshot — the operator probe for a long
// sweep: N is the full item count (a grid batch's total point count),
// ItemsDone counts completed items including the journal-replayed
// ItemsResumed, and UnitsLeased is the current in-flight fan-out. The
// derived fields describe this run's pace: ElapsedMS since the
// coordinator started, ItemsPerSec over the items this run executed
// (replayed indices are excluded — a resumed run reports the rate of
// what it actually ran), and ETAMS extrapolating that rate over the
// remainder. Workers and InFlight break the fleet down per worker and
// per leased unit, with liveness and straggler flags.
type Status struct {
	Kind         string `json:"kind"`
	N            int    `json:"n"`
	ItemsDone    int    `json:"items_done"`
	ItemsResumed int    `json:"items_resumed"`
	UnitsTotal   int    `json:"units_total"`
	UnitsDone    int    `json:"units_done"`
	UnitsLeased  int    `json:"units_leased"`
	Failed       bool   `json:"failed"`
	// ElapsedMS is the wall time since the coordinator was created.
	ElapsedMS int64 `json:"elapsed_ms"`
	// ItemsPerSec is the observed completion rate of items this run
	// executed (0 until the first completion).
	ItemsPerSec float64 `json:"items_per_sec"`
	// ETAMS extrapolates ItemsPerSec over the remaining items; omitted
	// while no rate is observable or when nothing remains.
	ETAMS int64 `json:"eta_ms,omitempty"`
	// UnitMeanMS is the mean execution time of completed units — the
	// baseline the straggler flag compares lease ages against.
	UnitMeanMS float64 `json:"unit_mean_ms,omitempty"`
	// Workers lists every worker that ever contacted this coordinator,
	// sorted by ID.
	Workers []WorkerStatus `json:"workers,omitempty"`
	// InFlight lists the currently leased units, sorted by unit ID.
	InFlight []UnitStatus `json:"in_flight,omitempty"`
}

// WorkerStatus is one fleet member's row in Status: what it has done and
// when it was last heard from. A worker is Live while its silence is
// shorter than the lease TTL — the same threshold that would forfeit its
// unit.
type WorkerStatus struct {
	ID string `json:"id"`
	// UnitsDone / ItemsDone count the work this worker reported.
	UnitsDone int `json:"units_done"`
	ItemsDone int `json:"items_done"`
	// LastSeenMS is how long ago the worker last contacted the
	// coordinator (lease, heartbeat, result, or failure report).
	LastSeenMS int64 `json:"last_seen_ms"`
	Live       bool  `json:"live"`
	// CurrentUnit is the unit this worker holds a live lease on, absent
	// when it holds none.
	CurrentUnit *int `json:"current_unit,omitempty"`
}

// UnitStatus is one in-flight unit's row in Status.
type UnitStatus struct {
	ID     int    `json:"id"`
	Worker string `json:"worker"`
	// Items is the number of input items the unit covers.
	Items int `json:"items"`
	// LeaseAgeMS is how long the current lease has been outstanding
	// (across renewals — heartbeats extend the deadline, not this age).
	LeaseAgeMS int64 `json:"lease_age_ms"`
	// Straggler flags a unit whose lease age exceeds twice the mean
	// completed-unit execution time, once at least strugglerMinSamples
	// units have completed (stragglerMinSamples) — the units to watch
	// (or the workers to restart) when a sweep's tail drags.
	Straggler bool `json:"straggler,omitempty"`
}
