// Package dist distributes a sweep across processes and machines: a
// coordinator splits an ordered batch into contiguous work units (via
// sweep.Shards, so unit boundaries follow the same input-ordered shard
// geometry every ordered reduction in this repository relies on), leases
// units to workers over a small HTTP+JSON protocol, and reassembles the
// workers' NDJSON result lines in input order — so distributed output is
// byte-identical to the sequential run, the repository's core invariant
// extended across process boundaries.
//
// The protocol is four POST endpoints plus a status probe, all JSON except
// the result body, which is raw NDJSON (the same frame cmd/scenario
// -stream emits):
//
//	POST /v1/lease      {"worker":ID}            -> {"done":bool,"unit":{...},"lease_ttl_ms":N,"retry_after_ms":N}
//	POST /v1/heartbeat  {"worker":ID,"unit":N}   -> {"ok":true} | 409 {"error":"lease lost"}
//	POST /v1/result?worker=ID&unit=N  <NDJSON>   -> {"accepted":true}
//	POST /v1/fail       {"worker":ID,"unit":N,"error":S} -> {"ok":true}
//	GET  /v1/status                              -> {"kind","n","items_done","items_resumed","units_total","units_done","units_leased","failed"}
//
// Liveness is lease-based: a worker holds a unit for LeaseTTL and extends
// it by heartbeating; when a worker dies mid-lease the lease expires and
// the next lease request hands the unit to another worker. Results are
// idempotent per item index — a re-leased unit reported by two workers
// stores each line once (first arrival wins; the lines are byte-identical
// anyway, because the work is deterministic) — so late results from a
// presumed-dead worker are accepted, never duplicated.
//
// The coordinator optionally journals every completed line to a checkpoint
// (internal/dist/journal); restarting it with the replayed lines skips
// finished items entirely, and units whose whole range was already
// journaled are never leased again.
//
// Payload kinds are not this package's business: SpecOf turns any
// work.Batch into a coordinator spec, and RegistryExecutor resolves units
// back into runnable batches through the work registry — adding a workload
// kind requires no change here. RequireToken optionally gates the protocol
// behind a shared secret for coordinators listening beyond one trusted
// host.
package dist

import (
	"encoding/json"

	"repro/internal/sweep"
)

// Unit is one leasable work unit: a contiguous range of the batch's input
// indices plus the self-contained payload a worker needs to execute them.
// Units carry everything over the wire — workers share no filesystem or
// configuration with the coordinator.
type Unit struct {
	// ID is the unit's index in the coordinator's shard list.
	ID int `json:"id"`
	// Range is the half-open input-index interval this unit covers.
	Range sweep.Range `json:"range"`
	// Kind names the payload family (a work-registry kind, e.g.
	// "scenario-batch") so an executor can refuse units it does not
	// understand.
	Kind string `json:"kind"`
	// Payload is the kind-specific work description.
	Payload json.RawMessage `json:"payload"`
}

// Spec describes a divisible batch to the coordinator: how many ordered
// items it has, how to render the payload for a contiguous range of them,
// and the content hash that pins the input across restarts.
type Spec struct {
	// Kind tags the payload family of every unit.
	Kind string
	// Hash is the canonical content hash of the input batch
	// (journal.Hash); it keys checkpoint resume.
	Hash string
	// N is the number of ordered items.
	N int
	// Payload renders the work description for one contiguous item range.
	Payload func(r sweep.Range) (json.RawMessage, error)
	// Env, when non-nil, describes process-wide environment state the
	// batch's output depends on (work.EnvDescriber — the experiments
	// kind's simulation scale). It rides along with every granted lease so
	// workers can refuse units their local environment would compute
	// differently.
	Env json.RawMessage
}

// leaseRequest is the body of POST /v1/lease.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse is the coordinator's answer to a lease request: a unit to
// execute, a backoff hint when everything is currently leased, or done.
type LeaseResponse struct {
	// Done reports that no more work will ever be handed out: the batch
	// completed, failed, or the coordinator is shutting down. Workers exit.
	Done bool `json:"done"`
	// Unit is the leased work unit, nil when Done or when all remaining
	// units are leased to other workers.
	Unit *Unit `json:"unit,omitempty"`
	// Env, present only alongside Unit, is the coordinator's declared
	// environment for the batch (Spec.Env) — for the experiments kind,
	// the simulation scale the batch hash pins. Workers with a VerifyEnv
	// hook check it against their local environment and hard-fail on
	// mismatch instead of silently blending scales into one result set.
	Env json.RawMessage `json:"env,omitempty"`
	// LeaseTTLMS is the lease duration; workers heartbeat a few times per
	// TTL to keep the lease alive.
	LeaseTTLMS int64 `json:"lease_ttl_ms,omitempty"`
	// RetryAfterMS hints how long to wait before the next lease request
	// when no unit is available.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// heartbeatRequest is the body of POST /v1/heartbeat.
type heartbeatRequest struct {
	Worker string `json:"worker"`
	Unit   int    `json:"unit"`
}

// failRequest is the body of POST /v1/fail: a deterministic execution
// failure that should abort the whole batch (retrying deterministic work
// elsewhere would only fail again).
type failRequest struct {
	Worker string `json:"worker"`
	Unit   int    `json:"unit"`
	Error  string `json:"error"`
}

// Status is the GET /v1/status snapshot — what an operator polls to watch
// a long sweep: N is the full item count (a grid batch's total point
// count), ItemsDone counts completed items including the
// journal-replayed ItemsResumed, and UnitsLeased is the current in-flight
// fan-out.
type Status struct {
	Kind         string `json:"kind"`
	N            int    `json:"n"`
	ItemsDone    int    `json:"items_done"`
	ItemsResumed int    `json:"items_resumed"`
	UnitsTotal   int    `json:"units_total"`
	UnitsDone    int    `json:"units_done"`
	UnitsLeased  int    `json:"units_leased"`
	Failed       bool   `json:"failed"`
}
