package dist

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/work"
)

// SpecOf describes any work.Batch to the coordinator: the unit payloads
// are the batch's own range marshalling, the hash its canonical content
// hash — so a checkpoint taken by a distributed run and one taken by a
// single-process `work.Run -checkpoint` of the same batch are
// interchangeable. This is the whole coordinator side of a payload kind;
// there is no per-kind executor code in this package — the worker side
// resolves units through the work registry (RegistryExecutor).
func SpecOf(b work.Batch) (Spec, error) {
	if b.Len() <= 0 {
		return Spec{}, fmt.Errorf("dist: %s batch has no items", b.Kind())
	}
	hash, err := b.Hash()
	if err != nil {
		return Spec{}, err
	}
	spec := Spec{
		Kind:    b.Kind(),
		Hash:    hash,
		N:       b.Len(),
		Payload: b.MarshalRange,
	}
	// Kinds whose output depends on process-wide environment state
	// declare it here, and every lease carries it to the fleet.
	if d, ok := b.(work.EnvDescriber); ok {
		if spec.Env, err = d.DescribeEnv(); err != nil {
			return Spec{}, err
		}
	}
	return spec, nil
}

// RegistryExecutor returns the universal worker-side executor: it rebuilds
// any unit whose kind is registered with the work registry into a runnable
// batch and executes it, emitting exactly the NDJSON lines the sequential
// run would emit for the unit's indices. workers bounds in-unit
// concurrency (0 = GOMAXPROCS). A worker process executes every kind its
// binary links (cmd/sweepd links scenario and exp, so both register);
// units of a kind it does not know fail loudly with the registered list.
func RegistryExecutor(workers int) Executor {
	return InstrumentedExecutor(workers, nil)
}

// InstrumentedExecutor is RegistryExecutor with driver metrics: every
// unit's rebuilt batch runs with work.Options.Metrics set to reg, so a
// worker process serving reg on a debug listener exposes the same
// per-item latency histograms and throughput gauges a local run would.
// A nil reg disables instrumentation (identical to RegistryExecutor).
func InstrumentedExecutor(workers int, reg *obs.Registry) Executor {
	return func(ctx context.Context, u Unit) ([][]byte, error) {
		b, err := work.Unmarshal(u.Kind, u.Payload)
		if err != nil {
			return nil, fmt.Errorf("dist: unit %d: %w", u.ID, err)
		}
		if got, want := b.Len(), u.Range.Len(); got != want {
			return nil, fmt.Errorf("dist: unit %d payload carries %d items, range wants %d", u.ID, got, want)
		}
		return work.Collect(ctx, b, work.Options{Workers: workers, Metrics: reg})
	}
}
