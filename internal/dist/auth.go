package dist

import (
	"crypto/subtle"
	"net/http"
	"strings"
)

// RequireToken wraps the coordinator's handler with shared-secret
// authentication: every request must carry `Authorization: Bearer
// <token>`, and anything else — a missing header, a malformed one, a wrong
// secret — is answered 401 without touching the coordinator. The
// comparison is constant-time, so response timing leaks nothing about the
// secret. An empty token returns h unchanged (auth off), matching the
// `-token` flag default.
//
// This is transport-level gatekeeping for coordinators that must listen
// beyond a single trusted host; it does not encrypt the wire — terminate
// TLS in front of the coordinator before crossing untrusted networks.
func RequireToken(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	want := []byte(token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="sweepd"`)
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "missing or invalid bearer token"})
			return
		}
		h.ServeHTTP(w, r)
	})
}
