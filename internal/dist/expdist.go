package dist

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/dist/journal"
	"repro/internal/exp"
	"repro/internal/sweep"
)

// KindExperiments tags units carrying a slice of the experiment registry
// grid; the payload is {"ids": [...]} naming registry entries. Each worker
// builds its own Env — substrates (caches, fitted models, miss matrices)
// are memoized per process, which is exactly the point of distributing the
// grid: a fleet rebuilds them once per machine instead of once total, and
// in exchange the grid scales past one process.
const KindExperiments = "experiments"

// expPayload is the wire form of an experiment unit.
type expPayload struct {
	IDs []string `json:"ids"`
}

// expLine is the NDJSON shape of one distributed artifact — the same
// {"id","ascii","csv"} frame `figures -stream` emits, so downstream
// consumers cannot tell a distributed run from a local one.
type expLine struct {
	ID    string `json:"id"`
	ASCII string `json:"ascii"`
	CSV   string `json:"csv"`
}

// ExperimentsSpec describes a subset of the experiment registry (in
// registry order) to the coordinator. Unknown IDs fail here, on the
// coordinator, not on some worker three machines away.
func ExperimentsSpec(ids []string) (Spec, error) {
	if len(ids) == 0 {
		return Spec{}, fmt.Errorf("dist: no experiment ids")
	}
	if _, err := findExperiments(ids); err != nil {
		return Spec{}, err
	}
	hash, err := journal.Hash(expPayload{IDs: ids})
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Kind: KindExperiments,
		Hash: hash,
		N:    len(ids),
		Payload: func(r sweep.Range) (json.RawMessage, error) {
			return json.Marshal(expPayload{IDs: ids[r.Lo:r.Hi]})
		},
	}, nil
}

// ExperimentsExecutor returns the worker-side executor for experiment
// units. newEnv builds the worker's environment (e.g. exp.NewEnv, or
// exp.NewQuickEnv in tests) — one Env per executor, built lazily and
// shared across its units so memoized substrates amortize. The returned
// executor is stateful: give each Worker its own (a Worker runs units
// sequentially, so the laziness needs no lock).
func ExperimentsExecutor(newEnv func() *exp.Env) Executor {
	var env *exp.Env
	return func(ctx context.Context, u Unit) ([][]byte, error) {
		if u.Kind != KindExperiments {
			return nil, fmt.Errorf("dist: experiments executor got %q unit", u.Kind)
		}
		var p expPayload
		if err := json.Unmarshal(u.Payload, &p); err != nil {
			return nil, fmt.Errorf("dist: unit %d payload: %w", u.ID, err)
		}
		exps, err := findExperiments(p.IDs)
		if err != nil {
			return nil, err
		}
		if env == nil {
			env = newEnv()
		}
		arts, err := env.RunExperimentsCtx(ctx, exps)
		if err != nil {
			return nil, err
		}
		lines := make([][]byte, len(arts))
		for i, a := range arts {
			if lines[i], err = json.Marshal(expLine{ID: a.ID, ASCII: a.Render(), CSV: a.CSV()}); err != nil {
				return nil, err
			}
		}
		return lines, nil
	}
}

// findExperiments resolves registry IDs, preserving input order.
func findExperiments(ids []string) ([]exp.Experiment, error) {
	byID := make(map[string]exp.Experiment)
	for _, e := range exp.Experiments() {
		byID[e.ID] = e
	}
	out := make([]exp.Experiment, len(ids))
	for i, id := range ids {
		e, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("dist: unknown experiment id %q", id)
		}
		out[i] = e
	}
	return out, nil
}
