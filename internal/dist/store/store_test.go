package store

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist/journal"
	"repro/internal/scenario"
	"repro/internal/work"
)

// tinyBatch loads a small scenario batch; names parameterize it so tests
// can build distinct-but-overlapping batches.
func tinyBatch(t *testing.T, names ...string) scenario.Batch {
	t.Helper()
	var sc []string
	for _, n := range names {
		l1 := 16
		if strings.HasSuffix(n, "-big") {
			l1 = 32
		}
		sc = append(sc, fmt.Sprintf(
			`{"name":%q,"l1_kb":%d,"l2_kb":256,"workload":"tpcc","accesses":20000}`, n, l1))
	}
	b, err := scenario.LoadBatch(strings.NewReader(`{"scenarios":[` + strings.Join(sc, ",") + `]}`))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runAll executes every missing item of an admitted batch through the
// handle, as the service would.
func runAll(t *testing.T, h *Handle, b work.Batch) {
	t.Helper()
	for i := 0; i < b.Len(); i++ {
		if _, ok := h.Done[i]; ok {
			continue
		}
		line, err := b.RunItem(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Record(i, line); err != nil {
			t.Fatal(err)
		}
		h.Done[i] = line
	}
}

// TestAdmitFreshThenResubmit pins the tentpole's core promise: a second
// admission of an identical batch finds every line in the store and
// reports them as own-journal hits.
func TestAdmitFreshThenResubmit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := tinyBatch(t, "a", "b")

	h, err := s.Admit(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Done) != 0 || h.HitsJournal != 0 || h.HitsIndex != 0 {
		t.Fatalf("fresh admission reported cached lines: %+v", h)
	}
	runAll(t, h, b)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := s.Admit(b)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if len(h2.Done) != b.Len() || h2.HitsJournal != b.Len() || h2.HitsIndex != 0 {
		t.Fatalf("resubmission: done=%d journal=%d index=%d, want %d/%d/0",
			len(h2.Done), h2.HitsJournal, h2.HitsIndex, b.Len(), b.Len())
	}
	// The cached lines must be byte-identical to a fresh sequential run.
	for i := 0; i < b.Len(); i++ {
		want, err := b.RunItem(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		if string(h2.Done[i]) != string(want) {
			t.Fatalf("item %d cached line differs:\n got %s\nwant %s", i, h2.Done[i], want)
		}
	}
}

// TestOverlapAdoptsFromIndex pins per-item sharing: a new batch whose
// items overlap an earlier batch adopts the overlap from the index and
// copies it into its own journal, so a later resubmit needs no
// cross-reads.
func TestOverlapAdoptsFromIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first := tinyBatch(t, "a", "b")
	h1, err := s.Admit(first)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, h1, first)
	h1.Close()

	// Overlaps on "b", adds "c-big"; different batch hash, shared item.
	second := tinyBatch(t, "b", "c-big")
	h2, err := s.Admit(second)
	if err != nil {
		t.Fatal(err)
	}
	if h2.HitsIndex != 1 || h2.HitsJournal != 0 || len(h2.Done) != 1 {
		t.Fatalf("overlap admission: journal=%d index=%d done=%d, want 0/1/1",
			h2.HitsJournal, h2.HitsIndex, len(h2.Done))
	}
	want, err := first.RunItem(context.Background(), 1) // "b" in the first batch
	if err != nil {
		t.Fatal(err)
	}
	if string(h2.Done[0]) != string(want) {
		t.Fatalf("adopted line differs:\n got %s\nwant %s", h2.Done[0], want)
	}
	runAll(t, h2, second)
	h2.Close()

	// Resubmit of the second batch: all lines now in its own journal.
	h3, err := s.Admit(second)
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Close()
	if h3.HitsJournal != 2 || h3.HitsIndex != 0 {
		t.Fatalf("after adoption, resubmit: journal=%d index=%d, want 2/0", h3.HitsJournal, h3.HitsIndex)
	}
}

// TestAdoptSingleProcessCheckpoint pins the format bridge: a checkpoint
// journal written by the single-process driver (work.OpenJournal +
// work.Run), copied into the store under the batch's ID, is adopted
// hash-verified — and its lines become index-shareable.
func TestAdoptSingleProcessCheckpoint(t *testing.T) {
	b := tinyBatch(t, "a", "b")
	ckpt := filepath.Join(t.TempDir(), "ckpt.journal")
	jr, _, err := work.OpenJournal(ckpt, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := work.Run(context.Background(), b, work.Options{Workers: 1, Journal: jr}, io.Discard); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	dir := t.TempDir()
	hash, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, BatchID(b.Kind(), hash)+".journal"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, err := s.Admit(b)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.HitsJournal != b.Len() || len(h.Done) != b.Len() {
		t.Fatalf("adopted checkpoint: journal=%d done=%d, want %d", h.HitsJournal, len(h.Done), b.Len())
	}
	// First admission indexed the adopted lines: an overlapping batch hits.
	overlap := tinyBatch(t, "b")
	h2, err := s.Admit(overlap)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h2.HitsIndex != 1 {
		t.Fatalf("overlap on adopted checkpoint: index hits = %d, want 1", h2.HitsIndex)
	}
}

// TestRestartListsBatchesInAdmissionOrder pins the restart path: spec
// records survive, in order, and rebuild runnable batches.
func TestRestartListsBatchesInAdmissionOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := tinyBatch(t, "a"), tinyBatch(t, "b", "c")
	for _, b := range []scenario.Batch{b1, b2} {
		h, err := s.Admit(b)
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Batches()
	if len(recs) != 2 {
		t.Fatalf("restart found %d records, want 2", len(recs))
	}
	if recs[0].Seq >= recs[1].Seq {
		t.Fatalf("records out of admission order: %d then %d", recs[0].Seq, recs[1].Seq)
	}
	for i, want := range []scenario.Batch{b1, b2} {
		rb, err := work.Unmarshal(recs[i].Kind, recs[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		wantHash, _ := want.Hash()
		gotHash, err := rb.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if gotHash != wantHash || recs[i].BatchSHA256 != wantHash {
			t.Fatalf("record %d rebuilds hash %s, want %s", i, gotHash, wantHash)
		}
	}
}

// TestTornIndexTailDiscarded pins items.idx crash tolerance: a torn
// final line is truncated away on open and later appends stay valid.
func TestTornIndexTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := tinyBatch(t, "a")
	h, err := s.Admit(b)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, h, b)
	h.Close()
	s.Close()

	idx := filepath.Join(dir, "items.idx")
	f, err := os.OpenFile(idx, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"scenario/torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn index tail should be tolerated: %v", err)
	}
	defer s2.Close()
	if s2.Items() != 1 {
		t.Fatalf("index holds %d items after torn tail, want 1", s2.Items())
	}
	// The file itself was truncated back to valid NDJSON.
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatalf("items.idx not truncated to complete lines: %q", data)
	}
}

// TestReplayReadsStoredJournal pins Store.Replay: header and lines of a
// stored batch come back without the caller asserting an identity.
func TestReplayReadsStoredJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := tinyBatch(t, "a", "b")
	h, err := s.Admit(b)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, h, b)
	h.Close()

	hdr, lines, err := s.Replay(h.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != b.Kind() || hdr.N != b.Len() || len(lines) != b.Len() {
		t.Fatalf("replay header %+v with %d lines, want kind %s n %d", hdr, len(lines), b.Kind(), b.Len())
	}
	var decoded struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(lines[0], &decoded); err != nil || decoded.Name != "a" {
		t.Fatalf("line 0 = %s (err %v), want scenario \"a\"", lines[0], err)
	}
}

// TestWrongHashJournalRefused pins the identity check: a journal file
// whose header pins a different batch refuses admission instead of
// splicing foreign results.
func TestWrongHashJournalRefused(t *testing.T) {
	dir := t.TempDir()
	b := tinyBatch(t, "a")
	hash, _ := b.Hash()
	// A journal for a different batch, dropped in under this batch's name.
	jr, err := journal.Create(filepath.Join(dir, BatchID(b.Kind(), hash)+".journal"),
		journal.Header{Kind: b.Kind(), BatchSHA256: "0000", N: 1})
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Admit(b); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("admission of mismatched journal: err = %v, want hash mismatch", err)
	}
}
