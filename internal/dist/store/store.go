// Package store is the content-addressed result store behind the
// multi-batch sweep service: an append-only directory of per-batch
// checkpoint journals (the exact internal/dist/journal format, one file
// per batch, named by the batch's content identity) plus a per-item key
// index, so results survive coordinator restarts and are shared across
// batches.
//
// Layout of a store directory:
//
//	<kind>-<hash>.journal     one journal per admitted batch (journal.Header
//	                          pins kind, hash, item count; entries carry
//	                          completed result lines by input index)
//	<kind>-<hash>.batch.json  the batch's spec record: its full-range wire
//	                          payload plus an admission sequence number, so
//	                          a restarted service can rebuild and re-queue
//	                          every batch the store has ever admitted
//	items.idx                 append-only NDJSON index mapping work.ItemKeyer
//	                          keys to (batch, index) — the per-item lookup
//	                          that lets a new batch adopt lines computed for
//	                          an overlapping earlier batch of any kind
//
// Because per-batch journals are ordinary checkpoint journals, a
// single-process `-checkpoint` file copied into the store under its
// batch's name is adopted wholesale (hash-verified on admission), and a
// store journal can be read back by `sweepd journal` like any other
// checkpoint — the store is the PR-3 journal generalized across batches,
// not a second format.
//
// Crash tolerance follows the journal's rules: appends are single writes,
// a torn final line (journal or index) is discarded on open, and any
// deeper corruption is an error. The store never re-derives a result line
// — every cached line was recorded exactly as some batch executed it, and
// the ItemKeyer contract (equal keys ⇒ byte-identical lines) is what
// makes serving it to a different batch sound.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/dist/journal"
	"repro/internal/sweep"
	"repro/internal/work"
)

// BatchID is the store identity of a batch: its kind and content hash
// joined — the stem of its journal and spec-record file names, and the
// batch ID the service's HTTP API exposes.
func BatchID(kind, hash string) string { return kind + "-" + hash }

// Record is the durable spec of one admitted batch: everything a
// restarted service needs to rebuild it (work.Unmarshal of Kind/Payload)
// and re-queue it in the original admission order (Seq).
type Record struct {
	Seq         int64           `json:"seq"`
	Kind        string          `json:"kind"`
	BatchSHA256 string          `json:"batch_sha256"`
	N           int             `json:"n"`
	Payload     json.RawMessage `json:"payload"`
}

// ID is the batch's store identity.
func (r Record) ID() string { return BatchID(r.Kind, r.BatchSHA256) }

// idxEntry is one line of items.idx: an item key and the batch journal
// (plus index) holding its line. First occurrence wins, like journal
// entries.
type idxEntry struct {
	Key   string `json:"key"`
	Batch string `json:"b"`
	I     int    `json:"i"`
}

// itemRef locates one cached line: the journal of batch ID at index I.
type itemRef struct {
	batch string
	i     int
}

// Store is an open store directory. Admit and Record calls are safe for
// concurrent use; per-batch handles must not be duplicated (one live
// Handle per batch ID — the service's submit path guarantees it).
type Store struct {
	dir string

	mu    sync.Mutex
	idx   *os.File           // items.idx, positioned for appending
	items map[string]itemRef // item key -> first recorded location
	recs  map[string]Record  // batch ID -> spec record
	seq   int64              // highest admission sequence seen
}

// Open opens (creating if needed) a store directory: it loads every
// batch spec record, replays items.idx — truncating a torn final line,
// keeping the first occurrence of each key — and leaves the index
// positioned for appending.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, items: make(map[string]itemRef), recs: make(map[string]Record)}
	if err := s.loadRecords(); err != nil {
		return nil, err
	}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir is the store's directory path.
func (s *Store) Dir() string { return s.dir }

// Close closes the item index. Open handles keep their journals; close
// them separately.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		return nil
	}
	err := s.idx.Close()
	s.idx = nil
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Batches lists the spec records of every admitted batch in admission
// order — the restart path: rebuild each with work.Unmarshal and resubmit.
func (s *Store) Batches() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Items is the number of distinct item keys the index holds.
func (s *Store) Items() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Replay reads the journal of a stored batch by ID, returning its header
// and completed lines — how the service streams results of a batch it no
// longer holds in memory.
func (s *Store) Replay(id string) (journal.Header, map[int]json.RawMessage, error) {
	return journal.ReadFile(s.journalPath(id))
}

// Handle is one admitted batch: its open journal, the lines already
// present at admission (from its own journal and from sibling journals
// via the item index), and the bookkeeping to record new lines.
type Handle struct {
	// ID is the batch's store identity (kind-hash).
	ID string
	// Header pins kind, batch hash, and item count.
	Header journal.Header
	// Done holds the lines already present at admission, keyed by input
	// index. A complete Done (len == Header.N) means zero items remain.
	Done map[int]json.RawMessage
	// HitsJournal counts lines found in the batch's own journal;
	// HitsIndex counts lines adopted from other batches' journals through
	// the per-item index. HitsJournal + HitsIndex == len(Done).
	HitsJournal int
	HitsIndex   int

	s     *Store
	jr    *journal.Journal
	keyer work.ItemKeyer // nil: kind has no per-item identity
}

// Admit registers a batch with the store and returns its handle. It
// resumes the batch's own journal when one exists (hash-verified — this
// is also how a copied-in single-process checkpoint is adopted), fills
// remaining gaps from other batches' journals via the per-item index,
// and persists the batch's spec record on first admission so a restart
// re-queues it. Admission of an already-complete batch returns a handle
// whose Done covers every index.
func (s *Store) Admit(b work.Batch) (*Handle, error) {
	hash, err := b.Hash()
	if err != nil {
		return nil, err
	}
	h := &Handle{
		ID:     BatchID(b.Kind(), hash),
		Header: journal.Header{Kind: b.Kind(), BatchSHA256: hash, N: b.Len()},
		s:      s,
	}
	h.keyer, _ = b.(work.ItemKeyer)

	jr, done, err := journal.Open(s.journalPath(h.ID), h.Header, true)
	if err != nil {
		return nil, fmt.Errorf("store: admitting %s: %w", h.ID, err)
	}
	if done == nil {
		done = make(map[int]json.RawMessage)
	}
	h.jr, h.Done, h.HitsJournal = jr, done, len(done)

	if err := s.fillFromIndex(h); err != nil {
		jr.Close()
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, known := s.recs[h.ID]; !known {
		// First admission: persist the spec record and index whatever the
		// journal already held (an adopted checkpoint's lines are not in
		// items.idx yet — this pass is what makes them shareable).
		payload, err := b.MarshalRange(sweep.Range{Lo: 0, Hi: b.Len()})
		if err != nil {
			jr.Close()
			return nil, err
		}
		rec := Record{Seq: s.seq + 1, Kind: b.Kind(), BatchSHA256: hash, N: b.Len(), Payload: payload}
		if err := s.writeRecord(rec); err != nil {
			jr.Close()
			return nil, err
		}
		s.seq = rec.Seq
		s.recs[h.ID] = rec
		if h.keyer != nil {
			idxs := make([]int, 0, len(h.Done))
			for i := range h.Done {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				if err := s.indexItemLocked(h, i); err != nil {
					jr.Close()
					return nil, err
				}
			}
		}
	}
	return h, nil
}

// fillFromIndex adopts lines for h's missing indices from other batches'
// journals: it resolves each missing item key through the index, groups
// the references by source journal, replays each source once, and records
// the adopted lines into h's own journal — so per-batch journals stay
// self-contained and a future resubmit needs no cross-reads at all.
func (s *Store) fillFromIndex(h *Handle) error {
	if h.keyer == nil || len(h.Done) == h.Header.N || len(s.items) == 0 {
		return nil
	}
	type adoption struct {
		i   int // h's item index
		src int // index inside the source journal
	}
	wanted := make(map[string][]adoption) // source batch ID -> items to adopt
	var order []string                    // source IDs in first-reference order
	for i := 0; i < h.Header.N; i++ {
		if _, ok := h.Done[i]; ok {
			continue
		}
		k, err := h.keyer.ItemKey(i)
		if err != nil {
			return err
		}
		s.mu.Lock()
		ref, ok := s.items[k]
		s.mu.Unlock()
		if !ok || ref.batch == h.ID {
			continue
		}
		if len(wanted[ref.batch]) == 0 {
			order = append(order, ref.batch)
		}
		wanted[ref.batch] = append(wanted[ref.batch], adoption{i: i, src: ref.i})
	}
	for _, src := range order {
		_, lines, err := journal.ReadFile(s.journalPath(src))
		if err != nil {
			// A referenced journal that is gone or unreadable is a cache
			// miss, not a failure: the item re-executes and re-indexes.
			continue
		}
		for _, a := range wanted[src] {
			line, ok := lines[a.src]
			if !ok {
				continue
			}
			if err := h.jr.Record(a.i, line); err != nil {
				return err
			}
			h.Done[a.i] = line
			h.HitsIndex++
		}
	}
	return nil
}

// Record appends item i's result line to the batch's journal and, for
// keyed kinds, registers the line's item key in the shared index (first
// occurrence wins). Call once per index; the service's idempotency check
// sits above this.
func (h *Handle) Record(i int, line []byte) error {
	if err := h.jr.Record(i, line); err != nil {
		return err
	}
	if h.keyer == nil {
		return nil
	}
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.indexItemLocked(h, i)
}

// Sync flushes the batch's journal to stable storage.
func (h *Handle) Sync() error { return h.jr.Sync() }

// Close closes the batch's journal (the shared index belongs to the
// store and stays open).
func (h *Handle) Close() error { return h.jr.Close() }

// indexItemLocked appends an items.idx entry for h's item i unless its
// key is already mapped. Caller holds s.mu.
func (s *Store) indexItemLocked(h *Handle, i int) error {
	k, err := h.keyer.ItemKey(i)
	if err != nil {
		return err
	}
	if _, dup := s.items[k]; dup {
		return nil
	}
	if s.idx == nil {
		return fmt.Errorf("store: %s: recording into a closed store", h.ID)
	}
	data, err := json.Marshal(idxEntry{Key: k, Batch: h.ID, I: i})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.idx.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.items[k] = itemRef{batch: h.ID, i: i}
	return nil
}

// journalPath is the journal file of batch id.
func (s *Store) journalPath(id string) string {
	return filepath.Join(s.dir, id+".journal")
}

// loadRecords reads every *.batch.json spec record in the directory.
func (s *Store) loadRecords() error {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.batch.json"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("store: %s: %w", filepath.Base(p), err)
		}
		want := filepath.Base(p)
		if got := rec.ID() + ".batch.json"; got != want {
			return fmt.Errorf("store: %s: record identifies as %s", want, got)
		}
		s.recs[rec.ID()] = rec
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
	}
	return nil
}

// writeRecord persists a spec record atomically (temp file + rename), so
// a crash mid-write never leaves a half-readable record.
func (s *Store) writeRecord(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(s.dir, rec.ID()+".batch.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// loadIndex replays items.idx (first occurrence of a key wins, torn
// final line truncated away) and leaves the file open for appending.
func (s *Store) loadIndex() error {
	path := filepath.Join(s.dir, "items.idx")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	r := bufio.NewReader(f)
	var offset int64
	for {
		line, err := r.ReadBytes('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			f.Close()
			return fmt.Errorf("store: items.idx: %w", err)
		}
		if atEOF {
			// A trailing fragment is the torn final line of a crashed
			// append — drop it, like the journal does.
			break
		}
		var e idxEntry
		if err := json.Unmarshal(line, &e); err != nil {
			f.Close()
			return fmt.Errorf("store: items.idx: corrupt entry at byte %d: %w", offset, err)
		}
		if _, dup := s.items[e.Key]; !dup {
			s.items[e.Key] = itemRef{batch: e.Batch, i: e.I}
		}
		offset += int64(len(line))
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return fmt.Errorf("store: items.idx: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: items.idx: %w", err)
	}
	s.idx = f
	return nil
}
