package dist

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRequireTokenGate pins the middleware contract: no header, a
// malformed header, and a wrong secret are all 401 without reaching the
// coordinator; the right secret passes through.
func TestRequireTokenGate(t *testing.T) {
	ctx := t.Context()
	c, err := New(ctx, toySpec(2), Config{Units: 1, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range c.Results() {
		}
	}()
	srv := httptest.NewServer(RequireToken("s3cret", c.Handler()))
	t.Cleanup(srv.Close)

	post := func(auth string) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/lease", strings.NewReader(`{"worker":"w"}`))
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, bad := range []string{"", "Bearer wrong", "Basic s3cret", "s3cret"} {
		if code := post(bad); code != http.StatusUnauthorized {
			t.Errorf("auth %q: status %d, want 401", bad, code)
		}
	}
	if code := post("Bearer s3cret"); code != http.StatusOK {
		t.Errorf("valid token: status %d, want 200", code)
	}
}

// TestTokenCoversEveryEndpoint pins that the observability endpoints sit
// behind the same gate as the work protocol: every route — the status
// probe and the metrics exposition included — answers 401 without the
// secret and 200 with it. A fleet whose wire protocol needs a token must
// not leak progress or worker liveness to anonymous scrapers.
func TestTokenCoversEveryEndpoint(t *testing.T) {
	ctx := t.Context()
	c, err := New(ctx, toySpec(2), Config{Units: 1, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range c.Results() {
		}
	}()
	srv := httptest.NewServer(RequireToken("s3cret", c.Handler()))
	t.Cleanup(srv.Close)

	endpoints := []struct {
		method, path, body string
	}{
		{http.MethodPost, "/v1/lease", `{"worker":"w"}`},
		{http.MethodGet, "/v1/status", ""},
		{http.MethodGet, "/metrics", ""},
	}
	for _, ep := range endpoints {
		do := func(withToken bool) int {
			req, err := http.NewRequest(ep.method, srv.URL+ep.path, strings.NewReader(ep.body))
			if err != nil {
				t.Fatal(err)
			}
			if withToken {
				req.Header.Set("Authorization", "Bearer s3cret")
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode
		}
		if code := do(false); code != http.StatusUnauthorized {
			t.Errorf("%s %s without token: status %d, want 401", ep.method, ep.path, code)
		}
		if code := do(true); code != http.StatusOK {
			t.Errorf("%s %s with token: status %d, want 200", ep.method, ep.path, code)
		}
	}
}

// TestRequireTokenEmptyDisables checks an empty token leaves the handler
// untouched (auth off), matching the -token flag default.
func TestRequireTokenEmptyDisables(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusTeapot) })
	rec := httptest.NewRecorder()
	RequireToken("", h).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("empty token must disable auth, got status %d", rec.Code)
	}
}

// TestWorkerSendsToken runs a full distributed toy batch through a
// token-gated coordinator: workers carrying the secret complete it,
// workers without it fail their first lease with a 401.
func TestWorkerSendsToken(t *testing.T) {
	ctx := t.Context()
	c, err := New(ctx, toySpec(6), Config{Units: 3, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(RequireToken("s3cret", c.Handler()))
	t.Cleanup(srv.Close)

	intruder := &Worker{
		Coordinator: srv.URL, ID: "intruder", Exec: toyExec(-1),
		Client: srv.Client(), Poll: 5 * time.Millisecond,
	}
	if err := intruder.Run(ctx); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless worker must fail with 401, got %v", err)
	}

	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()
	w := &Worker{
		Coordinator: srv.URL, ID: "w0", Exec: toyExec(-1),
		Client: srv.Client(), Poll: 5 * time.Millisecond, Token: "s3cret",
	}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	buf := <-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), toyWant(6); got != want {
		t.Errorf("token-gated run:\n got: %q\nwant: %q", got, want)
	}
}
