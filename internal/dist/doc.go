// Package dist distributes a sweep across processes and machines: a
// coordinator splits an ordered batch into contiguous work units (via
// sweep.Shards, so unit boundaries follow the same input-ordered shard
// geometry every ordered reduction in this repository relies on), leases
// units to workers over a small HTTP+JSON protocol, and reassembles the
// workers' NDJSON result lines in input order — so distributed output is
// byte-identical to the sequential run, the repository's core invariant
// extended across process boundaries.
//
// The package serves two modes over one worker protocol. New builds a
// one-shot Coordinator born with a single batch that streams its results
// and is done; NewService builds a long-lived multi-batch Service: a FIFO
// queue of batches submitted over HTTP, multiplexed onto the same worker
// fleet and journaled in a content-addressed result store
// (internal/dist/store), so identical resubmissions and overlapping
// batches are served from disk with zero re-execution and a restarted
// service resumes every stored batch.
//
// The worker protocol is four POST endpoints plus a status probe, all
// JSON except the result body, which is raw NDJSON (the same frame
// cmd/scenario -stream emits):
//
//	POST /v1/lease      {"worker":ID}            -> {"done":bool,"unit":{...},"lease_ttl_ms":N,"retry_after_ms":N}
//	POST /v1/heartbeat  {"worker":ID,"unit":N}   -> {"ok":true} | 409 {"error":"lease lost"}
//	POST /v1/result?worker=ID&unit=N&exec_ms=T  <NDJSON>  -> {"accepted":true}
//	POST /v1/fail       {"worker":ID,"unit":N,"error":S} -> {"ok":true}
//	GET  /v1/status                              -> Status (progress, throughput, ETA, per-worker liveness, in-flight units)
//	GET  /metrics                                -> Prometheus text exposition of the dist_* families
//
// The Service adds the batch lifecycle endpoints (units then carry a
// "batch" ID that workers echo back on heartbeat/result/fail):
//
//	POST   /v1/batches              {"kind":K,"payload":P} -> 201 BatchStatus (200 on idempotent resubmit)
//	GET    /v1/batches              -> [BatchStatus] in submission order
//	GET    /v1/batches/{id}         -> BatchStatus
//	DELETE /v1/batches/{id}         -> BatchStatus (cancelled)
//	GET    /v1/batches/{id}/results -> input-ordered NDJSON stream, live or from the store
//
// docs/wire-protocol.md is the generated, example-by-example
// specification of both modes (captured from these handlers by
// internal/docs); docs/operations.md is the operator runbook.
//
// The worker's optional exec_ms on /v1/result reports the unit's measured
// execution time; the coordinator falls back to lease age when it is
// absent, so old workers interoperate. The status probe and the metrics
// endpoint sit behind the same handler (and therefore the same
// RequireToken gate) as the work protocol.
//
// Liveness is lease-based: a worker holds a unit for LeaseTTL and extends
// it by heartbeating; when a worker dies mid-lease the lease expires and
// the next lease request hands the unit to another worker. Results are
// idempotent per item index — a re-leased unit reported by two workers
// stores each line once (first arrival wins; the lines are byte-identical
// anyway, because the work is deterministic) — so late results from a
// presumed-dead worker are accepted, never duplicated.
//
// The coordinator optionally journals every completed line to a checkpoint
// (internal/dist/journal); restarting it with the replayed lines skips
// finished items entirely, and units whose whole range was already
// journaled are never leased again. The Service journals always: its
// store entries are ordinary checkpoint journals, readable by `sweepd
// journal` and adoptable in both directions (hash-verified).
//
// Payload kinds are not this package's business: SpecOf turns any
// work.Batch into a coordinator spec, and RegistryExecutor resolves units
// back into runnable batches through the work registry — adding a workload
// kind requires no change here. RequireToken optionally gates the protocol
// behind a shared secret for coordinators listening beyond one trusted
// host.
package dist
