package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// KindScenarioBatch tags units carrying a scenario sub-batch; the payload
// is the ordinary batch schema ({"scenarios": [...]}) restricted to the
// unit's range, with defaults already applied by the coordinator so every
// worker executes identical configs. It equals the scenario checkpoint
// kind, so single-process and distributed checkpoints of one batch are
// interchangeable.
const KindScenarioBatch = scenario.JournalKind

// ScenarioSpec describes a scenario batch to the coordinator. The hash
// pins the defaulted batch, so a checkpoint taken by a distributed run and
// one taken by a single-process `scenario -checkpoint` run of the same
// input are interchangeable.
func ScenarioSpec(b scenario.Batch) (Spec, error) {
	if err := b.Validate(); err != nil {
		return Spec{}, err
	}
	hash, err := ScenarioBatchHash(b)
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Kind: KindScenarioBatch,
		Hash: hash,
		N:    len(b.Scenarios),
		Payload: func(r sweep.Range) (json.RawMessage, error) {
			return json.Marshal(scenario.Batch{Scenarios: b.Scenarios[r.Lo:r.Hi]})
		},
	}, nil
}

// ScenarioBatchHash is the canonical content hash of a scenario batch —
// the value stored in checkpoint headers and compared on resume.
func ScenarioBatchHash(b scenario.Batch) (string, error) {
	return b.Hash()
}

// ScenarioExecutor returns the worker-side executor for scenario units: it
// runs the unit's sub-batch (workers bounds in-unit concurrency, 0 =
// GOMAXPROCS) and emits exactly the NDJSON lines the sequential
// `scenario -stream` run would emit for those indices.
func ScenarioExecutor(workers int) Executor {
	return func(ctx context.Context, u Unit) ([][]byte, error) {
		if u.Kind != KindScenarioBatch {
			return nil, fmt.Errorf("dist: scenario executor got %q unit", u.Kind)
		}
		dec := json.NewDecoder(bytes.NewReader(u.Payload))
		dec.DisallowUnknownFields()
		var b scenario.Batch
		if err := dec.Decode(&b); err != nil {
			return nil, fmt.Errorf("dist: unit %d payload: %w", u.ID, err)
		}
		res, err := scenario.RunBatchCtx(ctx, b, workers)
		if err != nil {
			return nil, err
		}
		lines := make([][]byte, len(res.Scenarios))
		for i, r := range res.Scenarios {
			if lines[i], err = r.NDJSONLine(); err != nil {
				return nil, err
			}
		}
		return lines, nil
	}
}
