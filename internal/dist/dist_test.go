package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist/journal"
	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// toySpec is a fast synthetic batch: item i's result line is {"i":i}. It
// exercises every protocol path without paying for real simulations.
func toySpec(n int) Spec {
	return Spec{
		Kind: "toy",
		Hash: "toyhash",
		N:    n,
		Payload: func(r sweep.Range) (json.RawMessage, error) {
			return json.Marshal(r)
		},
	}
}

// toyExec executes toy units; failAt >= 0 makes the unit containing that
// index fail deterministically.
func toyExec(failAt int) Executor {
	return func(ctx context.Context, u Unit) ([][]byte, error) {
		var r sweep.Range
		if err := json.Unmarshal(u.Payload, &r); err != nil {
			return nil, err
		}
		var lines [][]byte
		for i := r.Lo; i < r.Hi; i++ {
			if i == failAt {
				return nil, fmt.Errorf("toy item %d exploded", i)
			}
			lines = append(lines, []byte(fmt.Sprintf(`{"i":%d}`, i)))
		}
		return lines, nil
	}
}

// toyWant renders the sequential toy output for n items.
func toyWant(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"i":%d}`+"\n", i)
	}
	return b.String()
}

// startCoordinator boots a coordinator and its HTTP server, cleaning both
// up with the test.
func startCoordinator(t *testing.T, ctx context.Context, spec Spec, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(ctx, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// runWorkers runs k in-process workers against the coordinator and waits
// for all of them; the first non-nil worker error is returned.
func runWorkers(ctx context.Context, srv *httptest.Server, k int, exec Executor) error {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		werr error
	)
	for i := 0; i < k; i++ {
		w := &Worker{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("w%d", i),
			Exec:        exec,
			Client:      srv.Client(),
			Poll:        5 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				mu.Lock()
				if werr == nil {
					werr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return werr
}

// drain collects the coordinator's emitted NDJSON lines into one buffer.
func drain(c *Coordinator) *bytes.Buffer {
	var buf bytes.Buffer
	for line := range c.Results() {
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return &buf
}

// TestToyDistributedOrder checks the basic contract on a synthetic batch:
// several workers, more units than workers, output in input order.
func TestToyDistributedOrder(t *testing.T) {
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, toySpec(10), Config{Units: 4, LeaseTTL: time.Minute})

	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()
	if err := runWorkers(ctx, srv, 3, toyExec(-1)); err != nil {
		t.Fatal(err)
	}
	buf := <-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), toyWant(10); got != want {
		t.Errorf("distributed output out of order:\n got: %q\nwant: %q", got, want)
	}
}

// TestScenarioDistributedMatchesSequential is the acceptance test: a
// coordinator with two in-process workers produces byte-identical NDJSON
// to the buffered sequential run of the same scenario batch.
func TestScenarioDistributedMatchesSequential(t *testing.T) {
	b := testBatch(t, 4)

	// Sequential reference: one worker, the plain streaming pipeline.
	var want bytes.Buffer
	if err := scenario.StreamNDJSON(t.Context(), b, scenario.StreamOptions{Workers: 1}, &want); err != nil {
		t.Fatal(err)
	}

	spec, err := SpecOf(b)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, spec, Config{Units: 3, LeaseTTL: time.Minute})
	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()
	if err := runWorkers(ctx, srv, 2, RegistryExecutor(1)); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("distributed output differs from sequential:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
}

// testBatch builds a small real scenario batch (short simulations).
func testBatch(t *testing.T, n int) scenario.Batch {
	t.Helper()
	var cfgs []string
	for i := 0; i < n; i++ {
		cfgs = append(cfgs, fmt.Sprintf(
			`{"name":"s%d","l1_kb":16,"l2_kb":%d,"workload":"tpcc","accesses":20000}`, i, 256<<(i%2)))
	}
	b, err := scenario.LoadBatch(strings.NewReader(`{"scenarios":[` + strings.Join(cfgs, ",") + `]}`))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWorkerDeathReLease kills a worker mid-lease (it leases a unit and
// vanishes without heartbeating) and checks the lease expires, the unit is
// re-leased, and the batch still completes with ordered, complete output.
func TestWorkerDeathReLease(t *testing.T) {
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, toySpec(6), Config{Units: 3, LeaseTTL: 50 * time.Millisecond})

	// The zombie takes a lease and is never heard from again.
	zombie := leaseRaw(t, srv, "zombie")
	if zombie.Unit == nil {
		t.Fatal("zombie got no unit")
	}

	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()
	if err := runWorkers(ctx, srv, 1, toyExec(-1)); err != nil {
		t.Fatal(err)
	}
	buf := <-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), toyWant(6); got != want {
		t.Errorf("output after worker death:\n got: %q\nwant: %q", got, want)
	}
}

// TestLateResultIdempotent checks a presumed-dead worker's late result is
// accepted without duplicating lines: results are idempotent per index.
func TestLateResultIdempotent(t *testing.T) {
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, toySpec(4), Config{Units: 2, LeaseTTL: 50 * time.Millisecond})

	zombie := leaseRaw(t, srv, "zombie")
	if zombie.Unit == nil {
		t.Fatal("zombie got no unit")
	}

	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()
	if err := runWorkers(ctx, srv, 1, toyExec(-1)); err != nil {
		t.Fatal(err)
	}
	buf := <-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	// The zombie wakes up and reports the unit everyone moved past.
	u := *zombie.Unit
	var lines []string
	for i := u.Range.Lo; i < u.Range.Hi; i++ {
		lines = append(lines, fmt.Sprintf(`{"i":%d}`, i))
	}
	resp, err := srv.Client().Post(
		fmt.Sprintf("%s/v1/result?worker=zombie&unit=%d", srv.URL, u.ID),
		"application/x-ndjson", strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late result rejected: %s", resp.Status)
	}
	if got, want := buf.String(), toyWant(4); got != want {
		t.Errorf("late result corrupted output:\n got: %q\nwant: %q", got, want)
	}
}

// TestFailurePropagates checks a deterministic unit failure aborts the
// batch: the worker reports it, Wait returns it, and later leases tell
// workers the run is over.
func TestFailurePropagates(t *testing.T) {
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, toySpec(6), Config{Units: 3, LeaseTTL: time.Minute})

	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()
	werr := runWorkers(ctx, srv, 2, toyExec(4))
	<-done
	if werr == nil || !strings.Contains(werr.Error(), "exploded") {
		t.Fatalf("worker error = %v, want the toy explosion", werr)
	}
	if err := c.Wait(); err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("Wait() = %v, want the unit failure", err)
	}
	if lease := leaseRaw(t, srv, "latecomer"); !lease.Done {
		t.Error("post-failure lease should report done so workers exit")
	}
}

// TestResumeSkipsFinishedUnits restarts a coordinator against a journal
// holding a finished prefix and checks: covered units are never leased,
// nothing journaled is re-emitted, and journal + new emissions reassemble
// the full sequential output.
func TestResumeSkipsFinishedUnits(t *testing.T) {
	const n = 8
	spec := toySpec(n)
	path := filepath.Join(t.TempDir(), "toy.journal")
	h := journal.Header{Kind: spec.Kind, BatchSHA256: spec.Hash, N: n}

	// A previous run completed indices 0..4 (units 0 and 1 of 4, plus a
	// partial unit 2) before dying.
	j, err := journal.Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 4; i++ {
		if err := j.Record(i, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j, replayed, err := journal.Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	var leased []int
	ctx := t.Context()
	c, err := New(ctx, spec, Config{Units: 4, LeaseTTL: time.Minute, Journal: j, Done: replayed})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)

	var mu sync.Mutex
	w := &Worker{
		Coordinator: srv.URL, ID: "w0", Client: srv.Client(), Poll: 5 * time.Millisecond,
		Exec: toyExec(-1),
		OnUnit: func(u Unit) {
			mu.Lock()
			leased = append(leased, u.ID)
			mu.Unlock()
		},
	}
	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	buf := <-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	// With 8 items in 4 units of 2, indices 0..4 done means units 0 and 1
	// are fully covered and must never be executed again.
	for _, id := range leased {
		if id == 0 || id == 1 {
			t.Errorf("fully journaled unit %d was re-executed", id)
		}
	}
	// The resumed run emits only the remainder.
	if got, want := buf.String(), `{"i":5}`+"\n"+`{"i":6}`+"\n"+`{"i":7}`+"\n"; got != want {
		t.Errorf("resumed emission:\n got: %q\nwant: %q", got, want)
	}
	// And the journal now reassembles the complete sequential output.
	_, all, err := journal.Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	for i := 0; i < n; i++ {
		full.Write(all[i])
		full.WriteByte('\n')
	}
	if got, want := full.String(), toyWant(n); got != want {
		t.Errorf("journal reassembly:\n got: %q\nwant: %q", got, want)
	}
}

// TestStatus checks the observability probe after a completed run: the
// progress counters, the per-worker accounting, and a positive observed
// rate with no ETA (nothing remains).
func TestStatus(t *testing.T) {
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, toySpec(5), Config{Units: 2, LeaseTTL: time.Minute})
	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()
	if err := runWorkers(ctx, srv, 1, toyExec(-1)); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Kind != "toy" || st.N != 5 || st.ItemsDone != 5 || st.ItemsResumed != 0 ||
		st.UnitsTotal != 2 || st.UnitsDone != 2 || st.UnitsLeased != 0 || st.Failed {
		t.Errorf("status = %+v", st)
	}
	if st.ItemsPerSec <= 0 {
		t.Errorf("completed run must report a positive rate, got %v", st.ItemsPerSec)
	}
	if st.ETAMS != 0 {
		t.Errorf("completed run must omit the ETA, got %d", st.ETAMS)
	}
	if len(st.InFlight) != 0 {
		t.Errorf("completed run has in-flight units: %+v", st.InFlight)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w0" ||
		st.Workers[0].UnitsDone != 2 || st.Workers[0].ItemsDone != 5 || !st.Workers[0].Live {
		t.Errorf("workers = %+v", st.Workers)
	}
}

// fakeClock is a mutable obs.Clock for pinning the coordinator's derived
// status arithmetic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) clock() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// getStatus scrapes GET /v1/status.
func getStatus(t *testing.T, srv *httptest.Server) Status {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// postToyResult reports one toy unit's lines over raw HTTP, optionally
// with the exec_ms timing parameter (execMS < 0 omits it).
func postToyResult(t *testing.T, srv *httptest.Server, worker string, u Unit, execMS int64) {
	t.Helper()
	var lines []string
	for i := u.Range.Lo; i < u.Range.Hi; i++ {
		lines = append(lines, fmt.Sprintf(`{"i":%d}`, i))
	}
	target := fmt.Sprintf("%s/v1/result?worker=%s&unit=%d", srv.URL, worker, u.ID)
	if execMS >= 0 {
		target += fmt.Sprintf("&exec_ms=%d", execMS)
	}
	resp, err := srv.Client().Post(target, "application/x-ndjson", strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result for unit %d rejected: %s", u.ID, resp.Status)
	}
}

// TestStatusMidRun is the acceptance test for the operator probe: it
// drives a distributed run over raw HTTP under a fake clock, scraping
// /v1/status and /metrics mid-run, and pins the derived fields —
// throughput, ETA, per-worker liveness, lease ages, and the straggler
// flag — plus their monotone progression as units complete.
func TestStatusMidRun(t *testing.T) {
	fc := &fakeClock{now: time.Unix(1000, 0)}
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, toySpec(8),
		Config{Units: 4, LeaseTTL: time.Minute, Clock: fc.clock})
	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()

	// w0 executes unit 0 in one simulated second.
	lease := leaseRaw(t, srv, "w0")
	if lease.Unit == nil || lease.Unit.ID != 0 {
		t.Fatalf("lease = %+v", lease)
	}
	fc.advance(time.Second)
	postToyResult(t, srv, "w0", *lease.Unit, 1000)

	st := getStatus(t, srv)
	if st.ItemsDone != 2 || st.ElapsedMS != 1000 {
		t.Fatalf("after unit 0: %+v", st)
	}
	if st.ItemsPerSec != 2 {
		t.Errorf("rate = %v, want 2 items/s (2 items in 1s)", st.ItemsPerSec)
	}
	if st.ETAMS != 3000 {
		t.Errorf("eta = %dms, want 3000 (6 remaining at 2/s)", st.ETAMS)
	}
	if st.UnitMeanMS != 1000 {
		t.Errorf("unit mean = %vms, want 1000", st.UnitMeanMS)
	}
	if len(st.Workers) != 1 || st.Workers[0].LastSeenMS != 0 || !st.Workers[0].Live || st.Workers[0].CurrentUnit != nil {
		t.Errorf("workers after unit 0 = %+v", st.Workers)
	}
	firstDone := st.ItemsDone

	// w0 finishes units 1 and 2 at the same pace; the exec-time baseline
	// now has stragglerMinSamples observations of ~1000ms each.
	for i := 0; i < 2; i++ {
		lease = leaseRaw(t, srv, "w0")
		if lease.Unit == nil {
			t.Fatal("no unit leased")
		}
		fc.advance(time.Second)
		postToyResult(t, srv, "w0", *lease.Unit, 1000)
	}

	// w1 leases the last unit and goes quiet for five simulated seconds —
	// five times the mean unit time.
	lease = leaseRaw(t, srv, "w1")
	if lease.Unit == nil {
		t.Fatal("w1 got no unit")
	}
	slow := *lease.Unit
	fc.advance(5 * time.Second)

	st = getStatus(t, srv)
	if st.ItemsDone < firstDone {
		t.Errorf("items_done went backwards: %d -> %d", firstDone, st.ItemsDone)
	}
	if st.ItemsDone != 6 || st.UnitsLeased != 1 {
		t.Fatalf("mid-run status = %+v", st)
	}
	if len(st.InFlight) != 1 {
		t.Fatalf("in-flight = %+v", st.InFlight)
	}
	fl := st.InFlight[0]
	if fl.ID != slow.ID || fl.Worker != "w1" || fl.Items != 2 || fl.LeaseAgeMS != 5000 {
		t.Errorf("in-flight unit = %+v", fl)
	}
	if !fl.Straggler {
		t.Error("a 5000ms lease against a 1000ms unit mean must flag as straggler")
	}
	var w0, w1 *WorkerStatus
	for i := range st.Workers {
		switch st.Workers[i].ID {
		case "w0":
			w0 = &st.Workers[i]
		case "w1":
			w1 = &st.Workers[i]
		}
	}
	if w0 == nil || w1 == nil {
		t.Fatalf("workers = %+v", st.Workers)
	}
	if w0.UnitsDone != 3 || w0.ItemsDone != 6 || w0.LastSeenMS != 5000 || !w0.Live {
		t.Errorf("w0 = %+v", *w0)
	}
	if w1.LastSeenMS != 5000 || !w1.Live || w1.CurrentUnit == nil || *w1.CurrentUnit != slow.ID {
		t.Errorf("w1 = %+v", *w1)
	}

	// The same state through the Prometheus endpoint.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, want := range []string{
		`dist_items{kind="toy"} 8`,
		`dist_items_done{kind="toy"} 6`,
		`dist_units_leased{kind="toy"} 1`,
		`dist_workers_live{kind="toy"} 2`,
		`dist_items_per_second{kind="toy"} 0.75`,
		`dist_unit_exec_seconds_count{kind="toy"} 3`,
		`dist_unit_exec_seconds_sum{kind="toy"} 3`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	// The straggler finally reports; the run completes and the probe
	// settles monotone at done.
	postToyResult(t, srv, "w1", slow, 800)
	st = getStatus(t, srv)
	if st.ItemsDone != 8 || st.UnitsDone != 4 || st.UnitsLeased != 0 || st.ETAMS != 0 || len(st.InFlight) != 0 {
		t.Errorf("final status = %+v", st)
	}

	buf := <-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), toyWant(8); got != want {
		t.Errorf("instrumented run output:\n got: %q\nwant: %q", got, want)
	}
}

// TestStatusExecFallback checks the timing fallback for workers that do
// not report exec_ms: the lease age stands in, so UnitMeanMS still
// populates against an old fleet.
func TestStatusExecFallback(t *testing.T) {
	fc := &fakeClock{now: time.Unix(1000, 0)}
	ctx := t.Context()
	c, srv := startCoordinator(t, ctx, toySpec(4),
		Config{Units: 2, LeaseTTL: time.Minute, Clock: fc.clock})
	done := make(chan *bytes.Buffer, 1)
	go func() { done <- drain(c) }()

	for i := 0; i < 2; i++ {
		lease := leaseRaw(t, srv, "w0")
		if lease.Unit == nil {
			t.Fatal("no unit leased")
		}
		fc.advance(2 * time.Second)
		postToyResult(t, srv, "w0", *lease.Unit, -1) // no exec_ms
	}
	st := getStatus(t, srv)
	if st.UnitMeanMS != 2000 {
		t.Errorf("lease-age fallback mean = %vms, want 2000", st.UnitMeanMS)
	}
	<-done
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

// leaseRaw takes a lease over plain HTTP, bypassing the Worker loop.
func leaseRaw(t *testing.T, srv *httptest.Server, worker string) LeaseResponse {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/lease", "application/json",
		strings.NewReader(`{"worker":"`+worker+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lease LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	return lease
}

// TestExperimentsSpec checks the experiment-grid glue without paying for a
// real evaluation: unknown IDs fail on the coordinator, payloads carry the
// right registry slice.
func TestExperimentsSpec(t *testing.T) {
	if _, err := exp.NewBatch([]string{"fig1", "no-such-artifact"}, nil); err == nil ||
		!strings.Contains(err.Error(), "no-such-artifact") {
		t.Fatalf("unknown id must fail batch construction, got %v", err)
	}
	b, err := exp.NewBatch([]string{"fig1", "fig2", "tab-l1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := SpecOf(b)
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 3 || spec.Kind != exp.WorkKind {
		t.Fatalf("spec = %+v", spec)
	}
	payload, err := spec.Payload(sweep.Range{Lo: 1, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	var p struct {
		IDs []string `json:"ids"`
	}
	if err := json.Unmarshal(payload, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.IDs) != 2 || p.IDs[0] != "fig2" || p.IDs[1] != "tab-l1" {
		t.Fatalf("payload ids = %v", p.IDs)
	}
}

// TestRegistryExecutorRejectsUnknownKind pins the registry check: a unit
// of an unregistered kind is refused with the registered kind list.
func TestRegistryExecutorRejectsUnknownKind(t *testing.T) {
	_, err := RegistryExecutor(1)(t.Context(), Unit{Kind: "toy", Payload: []byte(`{}`)})
	if err == nil || !strings.Contains(err.Error(), `"toy"`) ||
		!strings.Contains(err.Error(), scenario.JournalKind) {
		t.Fatalf("unknown kind must be refused with the registered list, got %v", err)
	}
}

// TestRegistryExecutorRangeMismatch pins the payload/range sanity check: a
// unit whose payload carries a different item count than its range is
// refused before any work runs.
func TestRegistryExecutorRangeMismatch(t *testing.T) {
	b := testBatch(t, 2)
	payload, err := b.MarshalRange(sweep.Range{Lo: 0, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := Unit{Kind: scenario.JournalKind, Payload: payload, Range: sweep.Range{Lo: 0, Hi: 3}}
	if _, err := RegistryExecutor(1)(t.Context(), u); err == nil ||
		!strings.Contains(err.Error(), "range wants 3") {
		t.Fatalf("range mismatch must be refused, got %v", err)
	}
}
