package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/dist/journal"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Unit lease lifecycle. A unit leaves done only never — results are
// idempotent — and returns from leased to pending when its lease expires.
const (
	unitPending = iota
	unitLeased
	unitDone
)

// Config tunes a Coordinator.
type Config struct {
	// Units is the number of work units to split the batch into
	// (0 = GOMAXPROCS, capped at the item count). More units than workers
	// gives finer re-lease granularity when a worker dies; fewer amortizes
	// per-unit HTTP overhead.
	Units int
	// LeaseTTL is how long a worker may hold a unit without heartbeating
	// before it is handed to someone else (0 = 30s).
	LeaseTTL time.Duration
	// RetryAfter is the backoff hint returned when all remaining units are
	// leased (0 = 200ms).
	RetryAfter time.Duration
	// Journal, when non-nil, records every completed line so a restarted
	// coordinator can resume (pass the replayed lines as Done).
	Journal *journal.Journal
	// Done carries the lines a previous run already completed, keyed by
	// input index (journal replay). Covered indices are never re-executed
	// and never re-emitted.
	Done map[int]json.RawMessage
	// Progress, when non-nil, observes emission: it is called once per
	// line emitted by this run with (lines emitted, lines this run must
	// emit), serialized on the emitter goroutine. Indices replayed from a
	// checkpoint are excluded from both numbers — a resumed run counts
	// only the remainder it actually executes.
	Progress sweep.Progress
	// Metrics, when non-nil, is the registry the coordinator's dist_*
	// families register into — share one registry to expose coordinator
	// and driver metrics on a single endpoint. Nil gets a private
	// registry; either way Handler serves it at GET /metrics.
	Metrics *obs.Registry
	// Clock is the coordinator's time source (nil = time.Now): leases,
	// liveness, throughput, and straggler detection all read it. Tests
	// inject a fake to pin the derived-status arithmetic.
	Clock obs.Clock
}

// Coordinator metric names — the dist_* families Handler exposes at GET
// /metrics. The gauges are read-time views of the coordinator's own
// state (evaluated at scrape, no hot-path cost); the histogram observes
// one value per completed unit.
const (
	// MetricUnitExecSeconds is the per-unit execution-time histogram,
	// labeled (kind) — the worker-reported exec_ms when present, lease
	// age otherwise.
	MetricUnitExecSeconds = "dist_unit_exec_seconds"
	// MetricDistItems / MetricDistItemsDone gauge the batch size and
	// completed items (including journal-replayed ones), labeled (kind).
	MetricDistItems     = "dist_items"
	MetricDistItemsDone = "dist_items_done"
	// MetricUnitsLeased gauges units currently out on a live lease,
	// labeled (kind).
	MetricUnitsLeased = "dist_units_leased"
	// MetricWorkersLive gauges workers heard from within one lease TTL,
	// labeled (kind).
	MetricWorkersLive = "dist_workers_live"
	// MetricDistItemsPerSec gauges the completion rate of items this run
	// executed, labeled (kind) — the same figure Status.ItemsPerSec
	// reports.
	MetricDistItemsPerSec = "dist_items_per_second"
)

// stragglerMinSamples is how many units must have completed before the
// straggler heuristic has a baseline worth flagging against.
const stragglerMinSamples = 3

// workerState is the coordinator's per-worker bookkeeping, keyed by the
// worker's self-assigned ID.
type workerState struct {
	lastSeen  time.Time
	unitsDone int
	itemsDone int
}

// unitState is the coordinator-side lease bookkeeping for one unit.
type unitState struct {
	unit     Unit
	state    int
	worker   string
	deadline time.Time
	leasedAt time.Time // current lease grant; zero while pending/done
}

// Coordinator owns a batch: it leases units to workers, collects their
// NDJSON result lines, journals them, and emits them in input order.
// Create with New, expose Handler to workers, drain Results, then Wait.
type Coordinator struct {
	spec  Spec
	ttl   time.Duration
	retry time.Duration

	clock obs.Clock
	start time.Time
	reg   *obs.Registry

	mu        sync.Mutex
	units     []*unitState
	lines     [][]byte // per input index; nil until completed
	remaining int      // indices not yet completed
	resumed   int      // indices replayed from the checkpoint journal
	unitsDone int
	failure   error
	jr        *journal.Journal
	workers   map[string]*workerState
	execSumMS float64 // summed completed-unit execution time
	execCount int     // completed units with a measured execution time
	execHist  *obs.Histogram

	signal   chan struct{} // wakes the emitter; capacity 1
	out      chan []byte
	finished chan struct{}
	finalErr error
	done     <-chan struct{} // the run context
}

// New splits the spec into units and starts the ordered emitter. The
// context governs the whole distributed run: cancelling it stops emission,
// makes Wait return its error, and turns every subsequent lease response
// into done so workers exit.
func New(ctx context.Context, spec Spec, cfg Config) (*Coordinator, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("dist: batch has no items")
	}
	if spec.Payload == nil {
		return nil, fmt.Errorf("dist: spec has no payload renderer")
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	retry := cfg.RetryAfter
	if retry <= 0 {
		retry = 200 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coordinator{
		spec:      spec,
		ttl:       ttl,
		retry:     retry,
		clock:     cfg.Clock,
		reg:       reg,
		lines:     make([][]byte, spec.N),
		remaining: spec.N,
		jr:        cfg.Journal,
		workers:   make(map[string]*workerState),
		signal:    make(chan struct{}, 1),
		out:       make(chan []byte),
		finished:  make(chan struct{}),
		done:      ctx.Done(),
	}
	c.start = c.clock.Now()
	for i, line := range cfg.Done {
		if i < 0 || i >= spec.N {
			return nil, fmt.Errorf("dist: resumed index %d out of range [0, %d)", i, spec.N)
		}
		c.lines[i] = line
		c.remaining--
		c.resumed++
	}
	for _, r := range sweep.Shards(spec.N, cfg.Units) {
		payload, err := spec.Payload(r)
		if err != nil {
			return nil, fmt.Errorf("dist: rendering unit payload for [%d, %d): %w", r.Lo, r.Hi, err)
		}
		u := &unitState{unit: Unit{ID: len(c.units), Range: r, Kind: spec.Kind, Payload: payload}}
		if c.rangeDone(r) {
			u.state = unitDone
			c.unitsDone++
		}
		c.units = append(c.units, u)
	}
	c.registerMetrics()
	go c.emit(ctx, cfg.Progress)
	return c, nil
}

// registerMetrics binds the dist_* families: read-time gauges over the
// coordinator's own state (the fns lock mu at scrape time — never call
// them with mu held) plus the per-unit execution-time histogram.
func (c *Coordinator) registerMetrics() {
	kind := c.spec.Kind
	c.execHist = c.reg.Histogram(MetricUnitExecSeconds,
		"per-unit execution time in seconds", nil, "kind").With(kind)
	c.reg.Gauge(MetricDistItems, "items in the distributed batch", "kind").
		WithFunc(func() float64 { return float64(c.spec.N) }, kind)
	c.reg.Gauge(MetricDistItemsDone, "items completed, including journal-replayed ones", "kind").
		WithFunc(func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.spec.N - c.remaining)
		}, kind)
	c.reg.Gauge(MetricUnitsLeased, "units currently out on a live lease", "kind").
		WithFunc(func() float64 {
			now := c.clock.Now()
			c.mu.Lock()
			defer c.mu.Unlock()
			leased := 0
			for _, u := range c.units {
				if u.state == unitLeased && !now.After(u.deadline) {
					leased++
				}
			}
			return float64(leased)
		}, kind)
	c.reg.Gauge(MetricWorkersLive, "workers heard from within one lease TTL", "kind").
		WithFunc(func() float64 {
			now := c.clock.Now()
			c.mu.Lock()
			defer c.mu.Unlock()
			live := 0
			for _, w := range c.workers {
				if now.Sub(w.lastSeen) <= c.ttl {
					live++
				}
			}
			return float64(live)
		}, kind)
	c.reg.Gauge(MetricDistItemsPerSec, "completion rate of items this run executed", "kind").
		WithFunc(func() float64 {
			now := c.clock.Now()
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.rate(now)
		}, kind)
}

// Metrics returns the registry the coordinator's dist_* families live in
// — the one Handler serves at GET /metrics — so callers can expose the
// same registry on a debug listener or register their own families next
// to the coordinator's.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// rate returns the completion rate of items this run executed (replayed
// indices excluded). Callers hold mu.
func (c *Coordinator) rate(now time.Time) float64 {
	executed := (c.spec.N - c.remaining) - c.resumed
	if secs := now.Sub(c.start).Seconds(); secs > 0 && executed > 0 {
		return float64(executed) / secs
	}
	return 0
}

// noteWorker updates a worker's liveness bookkeeping. Callers hold mu.
func (c *Coordinator) noteWorker(id string, now time.Time) *workerState {
	w := c.workers[id]
	if w == nil {
		w = &workerState{}
		c.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// rangeDone reports whether every index of r already has a line (replayed
// from a checkpoint). Callers hold mu or have exclusive access.
func (c *Coordinator) rangeDone(r sweep.Range) bool {
	for i := r.Lo; i < r.Hi; i++ {
		if c.lines[i] == nil {
			return false
		}
	}
	return true
}

// Results delivers the batch's NDJSON lines in input order, each line as
// soon as the ordered prefix through it is complete. The channel closes
// when the batch ends (complete, failed, or cancelled); drain it, then call
// Wait for the verdict. Lines replayed from a checkpoint are not
// re-emitted — a resumed run's output is exactly the remainder.
func (c *Coordinator) Results() <-chan []byte { return c.out }

// Wait blocks until the batch ends and returns nil on success, the first
// worker-reported failure, or the run context's error.
func (c *Coordinator) Wait() error {
	<-c.finished
	return c.finalErr
}

// emit is the ordered emitter: it walks the input indices, forwarding each
// completed line, sleeping on signal when the next index is still running.
// Indices completed by a previous run (checkpoint replay) are skipped, not
// re-emitted.
func (c *Coordinator) emit(ctx context.Context, progress sweep.Progress) {
	defer close(c.finished)
	defer close(c.out)
	resumed := make(map[int]bool, c.spec.N)
	c.mu.Lock()
	for i, line := range c.lines {
		if line != nil {
			resumed[i] = true
		}
	}
	c.mu.Unlock()
	emitted := 0
	next := 0
	for {
		c.mu.Lock()
		if c.failure != nil {
			c.finalErr = c.failure
			c.mu.Unlock()
			return
		}
		var line []byte
		if next < c.spec.N {
			line = c.lines[next]
		}
		c.mu.Unlock()

		switch {
		case next == c.spec.N:
			c.finalErr = nil
			return
		case line == nil:
			select {
			case <-c.signal:
			case <-ctx.Done():
				c.finalErr = ctx.Err()
				return
			}
		case resumed[next]:
			next++
		default:
			select {
			case c.out <- line:
				emitted++
				if progress != nil {
					progress(emitted, c.spec.N-len(resumed))
				}
				next++
			case <-ctx.Done():
				c.finalErr = ctx.Err()
				return
			}
		}
	}
}

// wake nudges the emitter without blocking (the signal channel holds one
// pending wake-up; more would be redundant).
func (c *Coordinator) wake() {
	select {
	case c.signal <- struct{}{}:
	default:
	}
}

// Handler returns the coordinator's HTTP API: the worker protocol, the
// status probe, and the Prometheus exposition of the coordinator's
// metrics registry. One handler means one RequireToken gate covers all
// of them.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/result", c.handleResult)
	mux.HandleFunc("POST /v1/fail", c.handleFail)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	mux.Handle("GET /metrics", obs.Handler(c.reg))
	return mux
}

// writeJSON renders one protocol response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// shuttingDown reports whether the run context ended or a failure was
// recorded — in either case no more work is handed out.
func (c *Coordinator) shuttingDown() bool {
	select {
	case <-c.done:
		return true
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure != nil
}

// reclaimExpired returns timed-out leases to the pending pool. Callers
// hold mu.
func (c *Coordinator) reclaimExpired(now time.Time) {
	for _, u := range c.units {
		if u.state == unitLeased && now.After(u.deadline) {
			u.state = unitPending
			u.worker = ""
			u.leasedAt = time.Time{}
		}
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "lease request needs a worker id"})
		return
	}
	if c.shuttingDown() {
		writeJSON(w, http.StatusOK, LeaseResponse{Done: true})
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteWorker(req.Worker, now)
	if c.remaining == 0 {
		writeJSON(w, http.StatusOK, LeaseResponse{Done: true})
		return
	}
	c.reclaimExpired(now)
	for _, u := range c.units {
		if u.state != unitPending {
			continue
		}
		u.state = unitLeased
		u.worker = req.Worker
		u.deadline = now.Add(c.ttl)
		u.leasedAt = now
		writeJSON(w, http.StatusOK, LeaseResponse{Unit: &u.unit, Env: c.spec.Env, LeaseTTLMS: c.ttl.Milliseconds()})
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{RetryAfterMS: c.retry.Milliseconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed heartbeat"})
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteWorker(req.Worker, now)
	if req.Unit < 0 || req.Unit >= len(c.units) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown unit"})
		return
	}
	u := c.units[req.Unit]
	if u.state != unitLeased || u.worker != req.Worker {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "lease lost"})
		return
	}
	u.deadline = now.Add(c.ttl)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleResult ingests one unit's NDJSON lines. Results are accepted even
// from a worker whose lease has expired — the work is deterministic, so a
// late line is as good as the re-leased copy, and per-index idempotency
// keeps the first arrival. The optional exec_ms query parameter carries
// the worker's measured unit execution time; without it the lease age
// stands in, so the timing stats degrade rather than vanish against old
// workers.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	unitID, err := strconv.Atoi(r.URL.Query().Get("unit"))
	if worker == "" || err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "result needs ?worker=ID&unit=N"})
		return
	}
	execMS, execErr := strconv.ParseFloat(r.URL.Query().Get("exec_ms"), 64)
	haveExec := execErr == nil && execMS >= 0
	body, err := readAll(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	lines := splitNDJSON(body)

	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.noteWorker(worker, now)
	if unitID < 0 || unitID >= len(c.units) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown unit"})
		return
	}
	u := c.units[unitID]
	if got, want := len(lines), u.unit.Range.Len(); got != want {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("unit %d wants %d result lines, got %d", unitID, want, got),
		})
		return
	}
	for k, line := range lines {
		if !json.Valid(line) {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("unit %d result line %d is not JSON", unitID, k),
			})
			return
		}
	}
	stored := 0
	for k, line := range lines {
		idx := u.unit.Range.Lo + k
		if c.lines[idx] != nil {
			continue // idempotent: first arrival won
		}
		if c.jr != nil {
			if err := c.jr.Record(idx, line); err != nil {
				// A dying checkpoint must not sink the run: results are
				// still held in memory, only restartability degrades.
				c.failure = fmt.Errorf("dist: checkpoint append failed: %w", err)
				c.wake()
				writeJSON(w, http.StatusInternalServerError, map[string]string{"error": c.failure.Error()})
				return
			}
		}
		c.lines[idx] = line
		c.remaining--
		stored++
	}
	ws.itemsDone += stored
	if u.state != unitDone {
		u.state = unitDone
		c.unitsDone++
		ws.unitsDone++
		// One timing observation per completed unit: the worker's own
		// measurement when reported, its lease age otherwise (a late
		// result from an expired lease has neither — skip it).
		switch {
		case haveExec:
			c.recordUnitExec(execMS)
		case u.worker == worker && !u.leasedAt.IsZero():
			c.recordUnitExec(float64(now.Sub(u.leasedAt)) / float64(time.Millisecond))
		}
		u.worker = ""
		u.leasedAt = time.Time{}
	}
	c.wake()
	writeJSON(w, http.StatusOK, map[string]bool{"accepted": true})
}

// recordUnitExec folds one completed unit's execution time into the
// straggler baseline and the exec-time histogram. Callers hold mu.
func (c *Coordinator) recordUnitExec(ms float64) {
	c.execSumMS += ms
	c.execCount++
	c.execHist.Observe(ms / 1000)
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed failure report"})
		return
	}
	c.mu.Lock()
	c.noteWorker(req.Worker, c.clock.Now())
	if c.failure == nil {
		c.failure = fmt.Errorf("dist: unit %d failed on worker %s: %s", req.Unit, req.Worker, req.Error)
	}
	c.mu.Unlock()
	c.wake()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// Status assembles the operator snapshot GET /v1/status serves — exported
// so the serving process can read its own coordinator (for end-of-run
// manifests) without going through HTTP.
func (c *Coordinator) Status() Status {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Kind:         c.spec.Kind,
		N:            c.spec.N,
		ItemsDone:    c.spec.N - c.remaining,
		ItemsResumed: c.resumed,
		UnitsTotal:   len(c.units),
		UnitsDone:    c.unitsDone,
		Failed:       c.failure != nil,
		ElapsedMS:    now.Sub(c.start).Milliseconds(),
		ItemsPerSec:  c.rate(now),
	}
	if st.ItemsPerSec > 0 && c.remaining > 0 {
		st.ETAMS = int64(float64(c.remaining) / st.ItemsPerSec * 1000)
	}
	if c.execCount > 0 {
		st.UnitMeanMS = c.execSumMS / float64(c.execCount)
	}
	currentUnit := make(map[string]int)
	for _, u := range c.units {
		if u.state != unitLeased || now.After(u.deadline) {
			continue
		}
		st.UnitsLeased++
		currentUnit[u.worker] = u.unit.ID
		age := now.Sub(u.leasedAt).Milliseconds()
		st.InFlight = append(st.InFlight, UnitStatus{
			ID:         u.unit.ID,
			Worker:     u.worker,
			Items:      u.unit.Range.Len(),
			LeaseAgeMS: age,
			Straggler: c.execCount >= stragglerMinSamples &&
				float64(age) > 2*c.execSumMS/float64(c.execCount),
		})
	}
	sort.Slice(st.InFlight, func(i, j int) bool { return st.InFlight[i].ID < st.InFlight[j].ID })
	for id, ws := range c.workers {
		row := WorkerStatus{
			ID:         id,
			UnitsDone:  ws.unitsDone,
			ItemsDone:  ws.itemsDone,
			LastSeenMS: now.Sub(ws.lastSeen).Milliseconds(),
			Live:       now.Sub(ws.lastSeen) <= c.ttl,
		}
		if unit, ok := currentUnit[id]; ok {
			u := unit
			row.CurrentUnit = &u
		}
		st.Workers = append(st.Workers, row)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}

// readAll drains a request body with a sanity cap: a unit's NDJSON result
// is bounded by the batch itself, not attacker-controlled, but a runaway
// worker should not exhaust coordinator memory.
func readAll(r *http.Request) ([]byte, error) {
	const maxResultBody = 256 << 20
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxResultBody))
	if err != nil {
		return nil, fmt.Errorf("reading result body: %w", err)
	}
	return body, nil
}

// splitNDJSON splits a result body into its non-empty lines.
func splitNDJSON(body []byte) [][]byte {
	var lines [][]byte
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines = append(lines, line)
	}
	return lines
}
