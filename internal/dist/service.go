package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/dist/store"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/work"
)

// BatchState is a service batch's lifecycle state.
type BatchState string

const (
	// BatchQueued: admitted, no unit leased yet.
	BatchQueued BatchState = "queued"
	// BatchRunning: at least one unit has been leased.
	BatchRunning BatchState = "running"
	// BatchDone: every item has a result line (executed or cached).
	BatchDone BatchState = "done"
	// BatchFailed: a unit failed deterministically; the remaining items
	// will never run (re-running deterministic work only fails again).
	BatchFailed BatchState = "failed"
	// BatchCancelled: an operator deleted the batch. Results already in
	// flight are still journaled (they are cache value), but no new units
	// are leased and the state never leaves cancelled.
	BatchCancelled BatchState = "cancelled"
)

// Service metric names — the families a multi-batch service registers
// beside the shared per-kind unit-execution histogram
// (MetricUnitExecSeconds).
const (
	// MetricQueueDepth gauges batches currently queued or running — with
	// MetricServiceETA, the autoscaling signal: scale workers up while
	// either stays high.
	MetricQueueDepth = "dist_queue_depth"
	// MetricBatches gauges batches by lifecycle state, labeled (state).
	MetricBatches = "dist_batches"
	// MetricStoreItems counts completed items by how they were satisfied,
	// labeled (source): "journal" (the batch's own prior journal),
	// "index" (adopted from an overlapping batch via the item index), or
	// "executed" (actually run by the fleet). The store hit rate is
	// (journal+index) / total.
	MetricStoreItems = "dist_store_items"
	// MetricServiceWorkersLive gauges workers heard from within one lease
	// TTL, across all batches.
	MetricServiceWorkersLive = "dist_service_workers_live"
	// MetricServiceItemsPerSec gauges the fleet-wide completion rate of
	// executed items.
	MetricServiceItemsPerSec = "dist_service_items_per_second"
	// MetricServiceETA gauges the seconds of executed work remaining at
	// the current rate, 0 while idle or rateless.
	MetricServiceETA = "dist_service_eta_seconds"
)

// ServiceConfig tunes a Service.
type ServiceConfig struct {
	// Store is the content-addressed result store backing every batch
	// (required): per-batch journals, the per-item index, and the spec
	// records a restarted service re-queues from.
	Store *store.Store
	// Units is the shard count per batch (0 = GOMAXPROCS, capped at the
	// batch's item count) — Config.Units per admitted batch.
	Units int
	// LeaseTTL and RetryAfter mirror Config.
	LeaseTTL   time.Duration
	RetryAfter time.Duration
	// Metrics is the registry the service's families register into (nil =
	// private registry); Handler serves it at GET /metrics.
	Metrics *obs.Registry
	// Clock is the service's time source (nil = time.Now).
	Clock obs.Clock
	// Logf, when non-nil, receives operational log lines (restores,
	// admissions, batch completions).
	Logf func(format string, args ...any)
}

// batchRun is the in-memory state of one admitted batch.
type batchRun struct {
	id   string
	kind string
	hash string
	n    int
	env  json.RawMessage

	units     []*unitState
	lines     [][]byte // per input index; nil once terminal (store has them)
	done      []uint64 // completed-index bitset, kept after terminal
	doneCount int
	remaining int
	unitsDone int

	cachedJournal int // items satisfied by the batch's own store journal
	cachedIndex   int // items adopted from overlapping batches
	executed      int // items completed by the fleet while this service ran

	state     BatchState
	errMsg    string
	handle    *store.Handle // nil once closed (done, or service shutdown)
	submitted time.Time
	started   time.Time // first lease; zero while queued
	ended     time.Time // terminal transition; zero while active
}

// active reports whether the batch still wants work.
func (b *batchRun) active() bool { return b.state == BatchQueued || b.state == BatchRunning }

// terminal is the complement of active.
func (b *batchRun) terminal() bool { return !b.active() }

// markDone sets index i's completed bit, reporting whether it was new.
func (b *batchRun) markDone(i int) bool {
	if b.done[i/64]&(1<<(i%64)) != 0 {
		return false
	}
	b.done[i/64] |= 1 << (i % 64)
	b.doneCount++
	return true
}

// isDone reads index i's completed bit.
func (b *batchRun) isDone(i int) bool { return b.done[i/64]&(1<<(i%64)) != 0 }

// Service is the multi-batch coordinator: a queue of concurrent batches
// multiplexed over one worker fleet, backed by a content-addressed result
// store. Workers run the exact single-batch protocol — units carry a
// batch ID and workers echo it — so one fleet drains heterogeneous
// batches with no per-kind (or per-batch) worker code. Batches are
// leased in submission order: the oldest batch with pending units wins,
// and later batches start as soon as every earlier unit is at least
// leased, so the fleet never idles while work exists.
//
// Every completed line lands in the store before it is streamable;
// admission replays the store first (own journal, then the per-item
// index), so resubmitting an identical batch — or one overlapping prior
// batches — executes only the genuinely new items. The served bytes are
// identical either way, because cached lines are the recorded output of
// the same deterministic items.
type Service struct {
	store *store.Store
	units int
	ttl   time.Duration
	retry time.Duration
	clock obs.Clock
	logf  func(format string, args ...any)
	reg   *obs.Registry
	start time.Time
	done  <-chan struct{} // the service context

	mu      sync.Mutex
	cond    *sync.Cond // broadcast: line completed or state changed
	byID    map[string]*batchRun
	order   []*batchRun // submission order
	workers map[string]*workerState

	execSumMS float64
	execCount int

	hitsJournal   *obs.Counter
	hitsIndex     *obs.Counter
	itemsExecuted *obs.Counter
}

// NewService creates a multi-batch service over a store. The context
// governs the service's lifetime: cancelling it turns every lease
// response into done (workers exit) and unblocks result streams.
// Call Restore to re-queue the store's batches, then serve Handler.
func NewService(ctx context.Context, cfg ServiceConfig) (*Service, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("dist: service needs a store")
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	retry := cfg.RetryAfter
	if retry <= 0 {
		retry = 200 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Service{
		store:   cfg.Store,
		units:   cfg.Units,
		ttl:     ttl,
		retry:   retry,
		clock:   cfg.Clock,
		logf:    logf,
		reg:     reg,
		done:    ctx.Done(),
		byID:    make(map[string]*batchRun),
		workers: make(map[string]*workerState),
	}
	s.cond = sync.NewCond(&s.mu)
	s.start = s.clock.Now()
	// Result streams block on cond while their batch runs; wake them when
	// the service winds down so they return instead of hanging.
	context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	s.registerMetrics()
	return s, nil
}

// Metrics returns the registry the service's families live in.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// registerMetrics binds the service families: read-time gauges over
// service state plus the store-attribution counters.
func (s *Service) registerMetrics() {
	s.reg.Gauge(MetricQueueDepth, "batches queued or running").WithFunc(func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		depth := 0
		for _, br := range s.order {
			if br.active() {
				depth++
			}
		}
		return float64(depth)
	})
	states := []BatchState{BatchQueued, BatchRunning, BatchDone, BatchFailed, BatchCancelled}
	vec := s.reg.Gauge(MetricBatches, "batches by lifecycle state", "state")
	for _, st := range states {
		st := st
		vec.WithFunc(func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, br := range s.order {
				if br.state == st {
					n++
				}
			}
			return float64(n)
		}, string(st))
	}
	items := s.reg.Counter(MetricStoreItems, "completed items by satisfaction source", "source")
	s.hitsJournal = items.With("journal")
	s.hitsIndex = items.With("index")
	s.itemsExecuted = items.With("executed")
	s.reg.Gauge(MetricServiceWorkersLive, "workers heard from within one lease TTL").WithFunc(func() float64 {
		now := s.clock.Now()
		s.mu.Lock()
		defer s.mu.Unlock()
		live := 0
		for _, w := range s.workers {
			if now.Sub(w.lastSeen) <= s.ttl {
				live++
			}
		}
		return float64(live)
	})
	s.reg.Gauge(MetricServiceItemsPerSec, "fleet-wide completion rate of executed items").WithFunc(func() float64 {
		now := s.clock.Now()
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.rateLocked(now)
	})
	s.reg.Gauge(MetricServiceETA, "seconds of executed work remaining at the current rate").WithFunc(func() float64 {
		now := s.clock.Now()
		s.mu.Lock()
		defer s.mu.Unlock()
		rate := s.rateLocked(now)
		if rate <= 0 {
			return 0
		}
		remaining := 0
		for _, br := range s.order {
			if br.active() {
				remaining += br.remaining
			}
		}
		return float64(remaining) / rate
	})
}

// rateLocked is the fleet-wide executed-items completion rate. Callers
// hold mu.
func (s *Service) rateLocked(now time.Time) float64 {
	executed := 0
	for _, br := range s.order {
		executed += br.executed
	}
	if secs := now.Sub(s.start).Seconds(); secs > 0 && executed > 0 {
		return float64(executed) / secs
	}
	return 0
}

// Restore re-admits every batch the store has recorded, in original
// admission order — the crash-recovery path: a restarted service picks
// up exactly the queue it died with, with all completed items already
// cached. It returns how many batches came back still needing work and
// how many were already complete; records that no longer rebuild (an
// unregistered kind, an environment mismatch for experiment batches) are
// logged and skipped, never fatal.
func (s *Service) Restore() (active, complete int) {
	for _, rec := range s.store.Batches() {
		b, err := work.Unmarshal(rec.Kind, rec.Payload)
		if err != nil {
			s.logf("restore %s: %v (skipped)", rec.ID(), err)
			continue
		}
		st, _, err := s.Submit(b)
		if err != nil {
			s.logf("restore %s: %v (skipped)", rec.ID(), err)
			continue
		}
		if st.State == BatchDone {
			complete++
		} else {
			active++
		}
	}
	return active, complete
}

// Submit admits a batch: store admission (journal resume + per-item
// index fill), unit sharding, and queueing. Submitting a batch the
// service already holds returns its current status unchanged (created
// false) — batch identity is content identity, so a resubmission IS the
// original batch. A batch whose every line is already in the store is
// born done and never leases a unit.
func (s *Service) Submit(b work.Batch) (BatchStatus, bool, error) {
	if b.Len() <= 0 {
		return BatchStatus{}, false, fmt.Errorf("dist: batch has no items")
	}
	hash, err := b.Hash()
	if err != nil {
		return BatchStatus{}, false, err
	}
	id := store.BatchID(b.Kind(), hash)
	now := s.clock.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if br, ok := s.byID[id]; ok {
		return s.batchStatusLocked(br, now), false, nil
	}

	h, err := s.store.Admit(b)
	if err != nil {
		return BatchStatus{}, false, err
	}
	br := &batchRun{
		id:            id,
		kind:          b.Kind(),
		hash:          hash,
		n:             b.Len(),
		lines:         make([][]byte, b.Len()),
		done:          make([]uint64, (b.Len()+63)/64),
		remaining:     b.Len(),
		cachedJournal: h.HitsJournal,
		cachedIndex:   h.HitsIndex,
		state:         BatchQueued,
		handle:        h,
		submitted:     now,
	}
	if ed, ok := b.(work.EnvDescriber); ok {
		env, err := ed.DescribeEnv()
		if err != nil {
			h.Close()
			return BatchStatus{}, false, err
		}
		br.env = env
	}
	cached := make([]int, 0, len(h.Done))
	for i := range h.Done {
		cached = append(cached, i)
	}
	sort.Ints(cached)
	for _, i := range cached {
		br.lines[i] = h.Done[i]
		br.markDone(i)
		br.remaining--
	}
	for _, r := range sweep.Shards(b.Len(), s.units) {
		payload, err := b.MarshalRange(r)
		if err != nil {
			h.Close()
			return BatchStatus{}, false, fmt.Errorf("dist: rendering unit payload for [%d, %d): %w", r.Lo, r.Hi, err)
		}
		u := &unitState{unit: Unit{ID: len(br.units), Range: r, Kind: b.Kind(), Payload: payload, Batch: id}}
		allDone := true
		for i := r.Lo; i < r.Hi; i++ {
			if !br.isDone(i) {
				allDone = false
				break
			}
		}
		if allDone {
			u.state = unitDone
			br.unitsDone++
		}
		br.units = append(br.units, u)
	}
	s.hitsJournal.Add(uint64(h.HitsJournal))
	s.hitsIndex.Add(uint64(h.HitsIndex))
	s.byID[id] = br
	s.order = append(s.order, br)
	if br.remaining == 0 {
		s.finishLocked(br, BatchDone, "", now)
		s.logf("batch %s: complete from store (%d journal, %d index)", id, h.HitsJournal, h.HitsIndex)
	} else {
		s.logf("batch %s: queued, %d/%d items cached", id, br.doneCount, br.n)
	}
	s.cond.Broadcast()
	return s.batchStatusLocked(br, now), true, nil
}

// Cancel moves an active batch to cancelled: no further units are
// leased, in-flight heartbeats bounce (workers abandon the execution),
// and late results are journaled but change nothing. Cancelling a
// terminal batch is an idempotent no-op reporting the current state.
func (s *Service) Cancel(id string) (BatchStatus, bool) {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	br, ok := s.byID[id]
	if !ok {
		return BatchStatus{}, false
	}
	if br.active() {
		s.finishLocked(br, BatchCancelled, "", now)
		s.logf("batch %s: cancelled with %d/%d items done", id, br.doneCount, br.n)
	}
	return s.batchStatusLocked(br, now), true
}

// finishLocked moves a batch to a terminal state: the in-memory lines
// are dropped (the store journal has every completed one — result
// streams switch to it), and a done batch's journal handle closes.
// Failed and cancelled batches keep the handle open to absorb late
// results as cache entries. Callers hold mu.
func (s *Service) finishLocked(br *batchRun, st BatchState, errMsg string, now time.Time) {
	br.state = st
	br.errMsg = errMsg
	br.ended = now
	br.lines = nil
	if st == BatchDone && br.handle != nil {
		if err := br.handle.Close(); err != nil {
			s.logf("batch %s: closing journal: %v", br.id, err)
		}
		br.handle = nil
	}
	s.cond.Broadcast()
}

// Close closes every open batch journal and the store — call after the
// HTTP server has stopped.
func (s *Service) Close() error {
	s.mu.Lock()
	for _, br := range s.order {
		if br.handle != nil {
			br.handle.Close()
			br.handle = nil
		}
	}
	s.mu.Unlock()
	return s.store.Close()
}

// Handler returns the service's HTTP API: the worker protocol (shared
// with the one-shot coordinator, batch-scoped), the batch lifecycle
// endpoints, the status probe, and the metrics exposition. One handler,
// one RequireToken gate.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/result", s.handleResult)
	mux.HandleFunc("POST /v1/fail", s.handleFail)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.Handle("GET /metrics", obs.Handler(s.reg))
	mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	mux.HandleFunc("GET /v1/batches", s.handleList)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatch)
	mux.HandleFunc("DELETE /v1/batches/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/batches/{id}/results", s.handleResults)
	return mux
}

// shuttingDown reports whether the service context ended.
func (s *Service) shuttingDown() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// noteWorkerLocked updates a worker's liveness bookkeeping. Callers hold
// mu.
func (s *Service) noteWorkerLocked(id string, now time.Time) *workerState {
	w := s.workers[id]
	if w == nil {
		w = &workerState{}
		s.workers[id] = w
	}
	w.lastSeen = now
	return w
}

func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "lease request needs a worker id"})
		return
	}
	if s.shuttingDown() {
		writeJSON(w, http.StatusOK, LeaseResponse{Done: true})
		return
	}
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteWorkerLocked(req.Worker, now)
	for _, br := range s.order {
		if !br.active() || br.remaining == 0 {
			continue
		}
		for _, u := range br.units {
			if u.state == unitLeased && now.After(u.deadline) {
				u.state = unitPending
				u.worker = ""
				u.leasedAt = time.Time{}
			}
			if u.state != unitPending {
				continue
			}
			u.state = unitLeased
			u.worker = req.Worker
			u.deadline = now.Add(s.ttl)
			u.leasedAt = now
			if br.state == BatchQueued {
				br.state = BatchRunning
				br.started = now
			}
			writeJSON(w, http.StatusOK, LeaseResponse{Unit: &u.unit, Env: br.env, LeaseTTLMS: s.ttl.Milliseconds()})
			return
		}
	}
	// No pending unit anywhere: the fleet is either fully busy or idle.
	// Workers poll rather than exit — the next submission needs them.
	writeJSON(w, http.StatusOK, LeaseResponse{RetryAfterMS: s.retry.Milliseconds()})
}

func (s *Service) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed heartbeat"})
		return
	}
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteWorkerLocked(req.Worker, now)
	br, ok := s.byID[req.Batch]
	if !ok || req.Unit < 0 || req.Unit >= len(br.units) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown unit"})
		return
	}
	u := br.units[req.Unit]
	// A terminal batch's leases are all forfeit — bouncing the heartbeat
	// makes the worker abandon the execution and lease fresh work.
	if br.terminal() || u.state != unitLeased || u.worker != req.Worker {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "lease lost"})
		return
	}
	u.deadline = now.Add(s.ttl)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleResult ingests one unit's NDJSON lines, batch-scoped. Results
// are idempotent per index (first arrival wins) and accepted even from
// expired leases, like the one-shot coordinator — and even for failed or
// cancelled batches, where the lines no longer change the batch's fate
// but are journaled as store cache for the next overlapping submission.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	worker := q.Get("worker")
	batch := q.Get("batch")
	unitID, err := strconv.Atoi(q.Get("unit"))
	if worker == "" || batch == "" || err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "result needs ?worker=ID&batch=ID&unit=N"})
		return
	}
	execMS, execErr := strconv.ParseFloat(q.Get("exec_ms"), 64)
	haveExec := execErr == nil && execMS >= 0
	body, err := readAll(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	lines := splitNDJSON(body)

	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.noteWorkerLocked(worker, now)
	br, ok := s.byID[batch]
	if !ok || unitID < 0 || unitID >= len(br.units) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown unit"})
		return
	}
	u := br.units[unitID]
	if got, want := len(lines), u.unit.Range.Len(); got != want {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("unit %d wants %d result lines, got %d", unitID, want, got),
		})
		return
	}
	for k, line := range lines {
		if !json.Valid(line) {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("unit %d result line %d is not JSON", unitID, k),
			})
			return
		}
	}
	stored := 0
	for k, line := range lines {
		idx := u.unit.Range.Lo + k
		if br.isDone(idx) {
			continue // idempotent: first arrival won
		}
		if br.handle == nil {
			continue // done batch: everything already journaled
		}
		if err := s.recordLocked(br, idx, line); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		stored++
	}
	ws.itemsDone += stored
	if u.state != unitDone {
		u.state = unitDone
		br.unitsDone++
		ws.unitsDone++
		switch {
		case haveExec:
			s.recordUnitExecLocked(br.kind, execMS)
		case u.worker == worker && !u.leasedAt.IsZero():
			s.recordUnitExecLocked(br.kind, float64(now.Sub(u.leasedAt))/float64(time.Millisecond))
		}
		u.worker = ""
		u.leasedAt = time.Time{}
	}
	if br.active() && br.remaining == 0 {
		s.finishLocked(br, BatchDone, "", now)
		s.logf("batch %s: done (%d executed, %d cached)", br.id, br.executed, br.cachedJournal+br.cachedIndex)
	}
	s.cond.Broadcast()
	writeJSON(w, http.StatusOK, map[string]bool{"accepted": true})
}

// recordLocked stores one freshly executed line: journal first (the
// store is the source of truth a restart replays), then the in-memory
// state streams read. Callers hold mu and have checked !isDone(idx).
func (s *Service) recordLocked(br *batchRun, idx int, line []byte) error {
	if err := br.handle.Record(idx, line); err != nil {
		return fmt.Errorf("dist: store append failed: %w", err)
	}
	if br.lines != nil {
		br.lines[idx] = line
	}
	br.markDone(idx)
	if br.remaining > 0 {
		br.remaining--
	}
	br.executed++
	s.itemsExecuted.Inc()
	return nil
}

// recordUnitExecLocked folds one completed unit's execution time into
// the service-wide straggler baseline and the per-kind histogram.
// Callers hold mu.
func (s *Service) recordUnitExecLocked(kind string, ms float64) {
	s.execSumMS += ms
	s.execCount++
	s.reg.Histogram(MetricUnitExecSeconds, "per-unit execution time in seconds", nil, "kind").
		With(kind).Observe(ms / 1000)
}

func (s *Service) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed failure report"})
		return
	}
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteWorkerLocked(req.Worker, now)
	br, ok := s.byID[req.Batch]
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown batch"})
		return
	}
	if br.active() {
		msg := fmt.Sprintf("unit %d failed on worker %s: %s", req.Unit, req.Worker, req.Error)
		s.finishLocked(br, BatchFailed, msg, now)
		s.logf("batch %s: failed: %s", br.id, msg)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Kind    string          `json:"kind"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Kind == "" || len(req.Payload) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `submission needs {"kind":..., "payload":...}`})
		return
	}
	b, err := work.Unmarshal(req.Kind, req.Payload)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	st, created, err := s.Submit(b)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := struct {
		Batches []BatchStatus `json:"batches"`
	}{Batches: make([]BatchStatus, 0, len(s.order))}
	for _, br := range s.order {
		out.Batches = append(out.Batches, s.batchStatusLocked(br, now))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	now := s.clock.Now()
	s.mu.Lock()
	br, ok := s.byID[r.PathValue("id")]
	var st BatchStatus
	if ok {
		st = s.batchStatusLocked(br, now)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown batch"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown batch"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResults streams a batch's result lines as input-ordered NDJSON:
// each line is written as soon as the ordered prefix through it is
// complete, flushed per line, so a client following a running batch sees
// results live. For batches whose in-memory lines are gone (terminal),
// the stream replays the store journal — cached or fresh, the bytes are
// identical to a sequential run. A failed or cancelled batch's stream
// ends at its first gap: those indices will never complete.
func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	br, ok := s.byID[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown batch"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// Streams park on cond while waiting for the next ordered line; wake
	// them if the client goes away so they notice and return.
	stop := context.AfterFunc(r.Context(), s.cond.Broadcast)
	defer stop()

	var stored map[int]json.RawMessage // store replay, once terminal
	for i := 0; i < br.n; i++ {
		var line []byte
		s.mu.Lock()
		for {
			if r.Context().Err() != nil || s.shuttingDown() {
				s.mu.Unlock()
				return
			}
			if br.lines == nil { // terminal: switch to the store journal
				break
			}
			if l := br.lines[i]; l != nil {
				line = l
				break
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		if line == nil {
			if stored == nil {
				_, lines, err := s.store.Replay(br.id)
				if err != nil {
					return // mid-stream; nothing safe left to say
				}
				stored = lines
			}
			l, ok := stored[i]
			if !ok {
				return // terminal gap: this index will never complete
			}
			line = l
		}
		// Two writes, not append(line, '\n'): the line may share backing
		// storage with other lines (result-body subslices), and appending
		// in place would be a write into shared memory.
		if _, err := w.Write(line); err != nil {
			return
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// BatchStatus is one batch's row in the service status and the response
// of the batch lifecycle endpoints.
type BatchStatus struct {
	ID    string     `json:"id"`
	Kind  string     `json:"kind"`
	N     int        `json:"n"`
	State BatchState `json:"state"`
	// ItemsDone counts completed items from any source; the three
	// attribution fields break it down (journal = the batch's own prior
	// journal, index = adopted from overlapping batches, executed = run
	// by the fleet while this service was up).
	ItemsDone          int `json:"items_done"`
	ItemsCachedJournal int `json:"items_cached_journal"`
	ItemsCachedIndex   int `json:"items_cached_index"`
	ItemsExecuted      int `json:"items_executed"`
	UnitsTotal         int `json:"units_total"`
	UnitsDone          int `json:"units_done"`
	UnitsLeased        int `json:"units_leased"`
	// SubmittedAgoMS is how long ago the batch was admitted.
	SubmittedAgoMS int64 `json:"submitted_ago_ms"`
	// Error carries the failure message of a failed batch.
	Error string `json:"error,omitempty"`
}

// StoreStatus summarizes the result store inside ServiceStatus.
type StoreStatus struct {
	// Batches is the number of batches the store has ever admitted;
	// Items is the number of distinct per-item keys it can share.
	Batches int `json:"batches"`
	Items   int `json:"items"`
	// HitsJournal / HitsIndex / ItemsExecuted attribute every completed
	// item since this service started (the counter totals behind
	// dist_store_items).
	HitsJournal   uint64 `json:"hits_journal"`
	HitsIndex     uint64 `json:"hits_index"`
	ItemsExecuted uint64 `json:"items_executed"`
}

// ServiceStatus is the GET /v1/status snapshot of a multi-batch service:
// the queue, every batch's progress, fleet liveness, and store
// attribution. QueueDepth and ETAMS together are the autoscaling signal
// — scale the fleet up while either stays high, down when both sit at
// zero.
type ServiceStatus struct {
	// Service discriminates the multi-batch snapshot from the one-shot
	// coordinator's Status (always true).
	Service    bool `json:"service"`
	QueueDepth int  `json:"queue_depth"`
	// ElapsedMS is the wall time since the service started; ItemsPerSec
	// the fleet-wide executed-item completion rate; ETAMS extrapolates
	// that rate over every active batch's remaining items.
	ElapsedMS   int64   `json:"elapsed_ms"`
	ItemsPerSec float64 `json:"items_per_sec"`
	ETAMS       int64   `json:"eta_ms,omitempty"`
	// UnitMeanMS is the mean execution time of completed units across
	// batches — the straggler baseline.
	UnitMeanMS float64        `json:"unit_mean_ms,omitempty"`
	Batches    []BatchStatus  `json:"batches"`
	Workers    []WorkerStatus `json:"workers,omitempty"`
	Store      StoreStatus    `json:"store"`
}

// Status assembles the service snapshot — exported so the serving
// process can read it for manifests without going through HTTP.
func (s *Service) Status() ServiceStatus {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ServiceStatus{
		Service:   true,
		ElapsedMS: now.Sub(s.start).Milliseconds(),
		Batches:   make([]BatchStatus, 0, len(s.order)),
		Store: StoreStatus{
			Batches:       len(s.store.Batches()),
			Items:         s.store.Items(),
			HitsJournal:   s.hitsJournal.Value(),
			HitsIndex:     s.hitsIndex.Value(),
			ItemsExecuted: s.itemsExecuted.Value(),
		},
	}
	st.ItemsPerSec = s.rateLocked(now)
	remaining := 0
	for _, br := range s.order {
		st.Batches = append(st.Batches, s.batchStatusLocked(br, now))
		if br.active() {
			st.QueueDepth++
			remaining += br.remaining
		}
	}
	if st.ItemsPerSec > 0 && remaining > 0 {
		st.ETAMS = int64(float64(remaining) / st.ItemsPerSec * 1000)
	}
	if s.execCount > 0 {
		st.UnitMeanMS = s.execSumMS / float64(s.execCount)
	}
	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := s.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID:         id,
			UnitsDone:  ws.unitsDone,
			ItemsDone:  ws.itemsDone,
			LastSeenMS: now.Sub(ws.lastSeen).Milliseconds(),
			Live:       now.Sub(ws.lastSeen) <= s.ttl,
		})
	}
	return st
}

// batchStatusLocked renders one batch's status row. Callers hold mu.
func (s *Service) batchStatusLocked(br *batchRun, now time.Time) BatchStatus {
	st := BatchStatus{
		ID:                 br.id,
		Kind:               br.kind,
		N:                  br.n,
		State:              br.state,
		ItemsDone:          br.doneCount,
		ItemsCachedJournal: br.cachedJournal,
		ItemsCachedIndex:   br.cachedIndex,
		ItemsExecuted:      br.executed,
		UnitsTotal:         len(br.units),
		UnitsDone:          br.unitsDone,
		SubmittedAgoMS:     now.Sub(br.submitted).Milliseconds(),
		Error:              br.errMsg,
	}
	for _, u := range br.units {
		if u.state == unitLeased && !now.After(u.deadline) {
			st.UnitsLeased++
		}
	}
	return st
}
