package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist/store"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/work"
)

// startService boots a service over a store directory and its HTTP
// server, cleaning both up with the test.
func startService(t *testing.T, ctx context.Context, dir string, cfg ServiceConfig) (*Service, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = time.Minute
	}
	s, err := NewService(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

// serviceWorker runs one in-process worker against the service until its
// context ends (the service never reports done while alive — workers
// poll for the next batch). A worker that exits over a deterministic
// unit failure is restarted, the way a supervised fleet member would be;
// the failed batch is terminal by then, so the restarted worker only
// ever leases other batches' units.
func serviceWorker(ctx context.Context, srv *httptest.Server, id string, exec Executor) {
	for ctx.Err() == nil {
		w := &Worker{
			Coordinator: srv.URL,
			ID:          id,
			Exec:        exec,
			Client:      srv.Client(),
			Poll:        5 * time.Millisecond,
		}
		_ = w.Run(ctx)
	}
}

// submitHTTP posts a batch through the public API and returns the status
// row plus the HTTP status code.
func submitHTTP(t *testing.T, srv *httptest.Server, b work.Batch) (BatchStatus, int) {
	t.Helper()
	payload, err := b.MarshalRange(sweep.Range{Lo: 0, Hi: b.Len()})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"kind": b.Kind(), "payload": json.RawMessage(payload)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, resp.StatusCode
}

// resultsHTTP streams a batch's NDJSON results to completion.
func resultsHTTP(t *testing.T, srv *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/v1/batches/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// waitBatchState polls until the batch reaches a terminal state or the
// deadline passes.
func waitBatchState(t *testing.T, s *Service, id string, want BatchState) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		for _, st := range s.Status().Batches {
			if st.ID == id && st.State == want {
				return st
			}
			if st.ID == id && st.State != want && st.State != BatchQueued && st.State != BatchRunning {
				t.Fatalf("batch %s reached %s, want %s", id, st.State, want)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s never reached %s", id, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sequentialNDJSON renders the reference output of a batch.
func sequentialNDJSON(t *testing.T, b scenario.Batch) []byte {
	t.Helper()
	var want bytes.Buffer
	if err := scenario.StreamNDJSON(t.Context(), b, scenario.StreamOptions{Workers: 1}, &want); err != nil {
		t.Fatal(err)
	}
	return want.Bytes()
}

// TestServiceStreamsByteIdenticalResults pins the service's core
// invariant: a batch submitted over HTTP, executed by fleet workers, and
// streamed back from GET /results is byte-identical to the sequential
// run.
func TestServiceStreamsByteIdenticalResults(t *testing.T) {
	b := testBatch(t, 4)
	want := sequentialNDJSON(t, b)

	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	s, srv := startService(t, ctx, t.TempDir(), ServiceConfig{Units: 3})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			serviceWorker(ctx, srv, fmt.Sprintf("w%d", i), RegistryExecutor(1))
		}(i)
	}

	st, code := submitHTTP(t, srv, b)
	if code != http.StatusCreated {
		t.Fatalf("first submission: HTTP %d, want 201", code)
	}
	got := resultsHTTP(t, srv, st.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("service output differs from sequential:\n got: %s\nwant: %s", got, want)
	}
	fin := waitBatchState(t, s, st.ID, BatchDone)
	if fin.ItemsExecuted != b.Len() || fin.ItemsCachedJournal != 0 {
		t.Errorf("fresh batch attribution: executed=%d cachedJournal=%d, want %d/0",
			fin.ItemsExecuted, fin.ItemsCachedJournal, b.Len())
	}
	cancel()
	wg.Wait()
}

// countingExecutor counts executed units before delegating — the probe
// behind the zero-work resubmission guarantee.
func countingExecutor(n *atomic.Int64, inner Executor) Executor {
	return func(ctx context.Context, u Unit) ([][]byte, error) {
		n.Add(1)
		return inner(ctx, u)
	}
}

// TestServiceResubmitServesFromStoreZeroWork is the tentpole equivalence
// test: run a batch to completion, restart the service on the same store
// (fresh process state), resubmit the identical batch while a worker is
// attached and counting — the batch completes with zero units executed,
// zero RunItem calls, and the streamed bytes are identical to the
// sequential run.
func TestServiceResubmitServesFromStoreZeroWork(t *testing.T) {
	b := testBatch(t, 4)
	want := sequentialNDJSON(t, b)
	dir := t.TempDir()

	// First life: execute the batch for real.
	ctx1, cancel1 := context.WithCancel(t.Context())
	s1, srv1 := startService(t, ctx1, dir, ServiceConfig{Units: 3})
	var wg1 sync.WaitGroup
	wg1.Add(1)
	go func() { defer wg1.Done(); serviceWorker(ctx1, srv1, "w0", RegistryExecutor(1)) }()
	st1, _ := submitHTTP(t, srv1, b)
	waitBatchState(t, s1, st1.ID, BatchDone)
	cancel1()
	wg1.Wait()
	srv1.Close()
	s1.Close()

	// Second life: same store, a worker attached and counting executions.
	ctx2, cancel2 := context.WithCancel(t.Context())
	defer cancel2()
	var executed atomic.Int64
	s2, srv2 := startService(t, ctx2, dir, ServiceConfig{Units: 3})
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		serviceWorker(ctx2, srv2, "w0", countingExecutor(&executed, RegistryExecutor(1)))
	}()

	// Restore re-queues the stored batch — complete, so it is born done.
	active, complete := s2.Restore()
	if active != 0 || complete != 1 {
		t.Fatalf("restore: active=%d complete=%d, want 0/1", active, complete)
	}
	// Resubmitting the identical batch over HTTP is idempotent (200, not
	// 201) and still byte-identical, with every item attributed to the
	// store.
	st2, code := submitHTTP(t, srv2, b)
	if code != http.StatusOK {
		t.Fatalf("resubmission: HTTP %d, want 200", code)
	}
	if st2.State != BatchDone {
		t.Fatalf("resubmitted batch state %s, want done immediately", st2.State)
	}
	if st2.ItemsCachedJournal != b.Len() || st2.ItemsExecuted != 0 {
		t.Fatalf("resubmission attribution: cachedJournal=%d executed=%d, want %d/0",
			st2.ItemsCachedJournal, st2.ItemsExecuted, b.Len())
	}
	got := resultsHTTP(t, srv2, st2.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("cached output differs from sequential:\n got: %s\nwant: %s", got, want)
	}
	if n := executed.Load(); n != 0 {
		t.Errorf("second pass executed %d units, want 0 (RunItem must never be called)", n)
	}
	cancel2()
	wg2.Wait()
}

// TestServiceRestartResumesQueue pins crash recovery: batches queued
// (and partially run) when the service dies are re-queued by Restore and
// complete on the new service, with prior results replayed not re-run.
func TestServiceRestartResumesQueue(t *testing.T) {
	b1, b2 := testBatch(t, 3), testBatch(t, 5)
	dir := t.TempDir()

	// First life: submit both, run nothing (no workers attached).
	ctx1, cancel1 := context.WithCancel(t.Context())
	s1, srv1 := startService(t, ctx1, dir, ServiceConfig{Units: 2})
	st1, _ := submitHTTP(t, srv1, b1)
	st2, _ := submitHTTP(t, srv1, b2)
	cancel1()
	srv1.Close()
	s1.Close()

	// Second life: both come back active and a worker drains the queue.
	ctx2, cancel2 := context.WithCancel(t.Context())
	defer cancel2()
	s2, srv2 := startService(t, ctx2, dir, ServiceConfig{Units: 2})
	active, complete := s2.Restore()
	if active != 2 || complete != 0 {
		t.Fatalf("restore: active=%d complete=%d, want 2/0", active, complete)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); serviceWorker(ctx2, srv2, "w0", RegistryExecutor(1)) }()
	if got, want := resultsHTTP(t, srv2, st1.ID), sequentialNDJSON(t, b1); !bytes.Equal(got, want) {
		t.Errorf("batch 1 after restart differs from sequential")
	}
	if got, want := resultsHTTP(t, srv2, st2.ID), sequentialNDJSON(t, b2); !bytes.Equal(got, want) {
		t.Errorf("batch 2 after restart differs from sequential")
	}
	cancel2()
	wg.Wait()
}

// TestServiceOverlapServedFromIndex pins per-item sharing end to end: a
// second batch overlapping the first on some items executes only the new
// ones; the overlap is adopted through the store's item index.
func TestServiceOverlapServedFromIndex(t *testing.T) {
	// testBatch(t, 3) is a strict prefix of testBatch(t, 5): scenarios
	// s0..s2 coincide, s3..s4 are new — 3 index hits, 2 executions.
	small, big := testBatch(t, 3), testBatch(t, 5)
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	s, srv := startService(t, ctx, t.TempDir(), ServiceConfig{Units: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); serviceWorker(ctx, srv, "w0", RegistryExecutor(1)) }()

	stSmall, _ := submitHTTP(t, srv, small)
	waitBatchState(t, s, stSmall.ID, BatchDone)

	stBig, _ := submitHTTP(t, srv, big)
	if stBig.ItemsCachedIndex != 3 {
		t.Fatalf("overlap admission: %d index hits, want 3", stBig.ItemsCachedIndex)
	}
	got := resultsHTTP(t, srv, stBig.ID)
	if want := sequentialNDJSON(t, big); !bytes.Equal(got, want) {
		t.Errorf("overlapping batch output differs from sequential:\n got: %s\nwant: %s", got, want)
	}
	fin := waitBatchState(t, s, stBig.ID, BatchDone)
	if fin.ItemsExecuted != 2 {
		t.Errorf("overlapping batch executed %d items, want 2", fin.ItemsExecuted)
	}
	cancel()
	wg.Wait()
}

// TestServiceCancelIsolatesBatch pins DELETE semantics: the cancelled
// batch stops leasing and stays cancelled; an unrelated batch on the
// same fleet is untouched; cancelling again (or cancelling a done batch)
// is an idempotent no-op; unknown IDs 404.
func TestServiceCancelIsolatesBatch(t *testing.T) {
	b1, b2 := testBatch(t, 3), testBatch(t, 5)
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	s, srv := startService(t, ctx, t.TempDir(), ServiceConfig{Units: 2})

	st1, _ := submitHTTP(t, srv, b1)
	st2, _ := submitHTTP(t, srv, b2)

	del := func(id string) (BatchStatus, int) {
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/batches/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st BatchStatus
		json.NewDecoder(resp.Body).Decode(&st)
		return st, resp.StatusCode
	}

	if st, code := del(st1.ID); code != http.StatusOK || st.State != BatchCancelled {
		t.Fatalf("cancel: HTTP %d state %s, want 200 cancelled", code, st.State)
	}
	if _, code := del("no-such-batch"); code != http.StatusNotFound {
		t.Fatalf("cancel unknown: HTTP %d, want 404", code)
	}

	// The fleet drains only the surviving batch.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); serviceWorker(ctx, srv, "w0", RegistryExecutor(1)) }()
	waitBatchState(t, s, st2.ID, BatchDone)
	if st, code := del(st1.ID); code != http.StatusOK || st.State != BatchCancelled {
		t.Fatalf("re-cancel: HTTP %d state %s, want 200 cancelled (idempotent)", code, st.State)
	}
	if st, _ := del(st2.ID); st.State != BatchDone {
		t.Fatalf("cancelling a done batch moved it to %s, want done", st.State)
	}
	for _, row := range s.Status().Batches {
		if row.ID == st1.ID && row.ItemsExecuted != 0 {
			t.Errorf("cancelled batch executed %d items", row.ItemsExecuted)
		}
	}
	cancel()
	wg.Wait()
}

// TestServiceFailureIsolatesBatch pins that a deterministic unit failure
// fails its batch — and only its batch; the fleet keeps draining others.
func TestServiceFailureIsolatesBatch(t *testing.T) {
	bad, good := testBatch(t, 3), testBatch(t, 5)
	badHash, err := bad.Hash()
	if err != nil {
		t.Fatal(err)
	}
	badID := store.BatchID(bad.Kind(), badHash)

	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	s, srv := startService(t, ctx, t.TempDir(), ServiceConfig{Units: 2})
	exec := func(ctx context.Context, u Unit) ([][]byte, error) {
		if u.Batch == badID {
			return nil, fmt.Errorf("synthetic deterministic failure")
		}
		return RegistryExecutor(1)(ctx, u)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); serviceWorker(ctx, srv, "w0", exec) }()

	stBad, _ := submitHTTP(t, srv, bad)
	stGood, _ := submitHTTP(t, srv, good)
	fin := waitBatchState(t, s, stBad.ID, BatchFailed)
	if !strings.Contains(fin.Error, "synthetic deterministic failure") {
		t.Errorf("failed batch error %q does not carry the cause", fin.Error)
	}
	waitBatchState(t, s, stGood.ID, BatchDone)
	cancel()
	wg.Wait()
}

// TestServiceStatusAndMetrics pins the observable surface: the service
// status discriminator, queue depth, store attribution, and the metric
// families the operations doc catalogues.
func TestServiceStatusAndMetrics(t *testing.T) {
	b := testBatch(t, 3)
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	s, srv := startService(t, ctx, t.TempDir(), ServiceConfig{Units: 2})
	st, _ := submitHTTP(t, srv, b)

	// Queued, nothing running: queue depth 1.
	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status ServiceStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !status.Service || status.QueueDepth != 1 || len(status.Batches) != 1 {
		t.Fatalf("status = %+v, want service=true queue_depth=1 with 1 batch", status)
	}
	if status.Batches[0].State != BatchQueued {
		t.Fatalf("batch state %s, want queued", status.Batches[0].State)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); serviceWorker(ctx, srv, "w0", RegistryExecutor(1)) }()
	waitBatchState(t, s, st.ID, BatchDone)

	// Resubmitting to the same service is idempotent: the existing done
	// batch comes back (200) without touching the store again.
	st2, code := submitHTTP(t, srv, b)
	if code != http.StatusOK || st2.State != BatchDone {
		t.Fatalf("resubmit: HTTP %d state %s, want 200 done", code, st2.State)
	}
	final := s.Status()
	if final.Store.ItemsExecuted != uint64(b.Len()) || final.Store.Items != b.Len() {
		t.Errorf("store attribution = %+v, want %d items, all executed", final.Store, b.Len())
	}
	if final.QueueDepth != 0 {
		t.Errorf("queue depth %d after completion, want 0", final.QueueDepth)
	}

	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	exposition, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		MetricQueueDepth, MetricBatches, MetricStoreItems,
		MetricServiceWorkersLive, MetricServiceItemsPerSec, MetricServiceETA,
		MetricUnitExecSeconds,
	} {
		if !bytes.Contains(exposition, []byte(family)) {
			t.Errorf("metrics exposition lacks family %s", family)
		}
	}
	cancel()
	wg.Wait()
}
