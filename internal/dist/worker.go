package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/obs"
)

// Executor runs one work unit and returns exactly one NDJSON line per
// input index in the unit's range, in range order. The lines must be what
// the sequential run would emit for those indices — byte-identity of the
// assembled output rests on executors being deterministic. A context error
// means the lease was lost or the worker is shutting down; any other error
// is deterministic and aborts the whole batch.
type Executor func(ctx context.Context, u Unit) ([][]byte, error)

// errLeaseLost marks a unit abandoned because the coordinator gave it to
// someone else (our heartbeat bounced); the worker just leases again.
var errLeaseLost = errors.New("dist: lease lost")

// ErrCoordinatorGone reports the coordinator became unreachable while the
// worker was idle (between units). A coordinator that has answered us
// before and now refuses connections has exited — normally because the
// batch completed and `sweepd serve` shut down before this worker's next
// lease poll — so callers usually treat it as a clean end of work rather
// than a failure. It is never returned while the worker holds results it
// could not deliver; an unreachable coordinator during a result report is
// a real error.
var ErrCoordinatorGone = errors.New("dist: coordinator gone")

// Worker pulls units from a coordinator until the batch is done: lease,
// heartbeat while executing, report the NDJSON lines, repeat. Run any
// number of them, in any mix of processes and machines — results are
// idempotent, so worker death at any point costs only the re-execution of
// the lost unit.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// ID names this worker in leases and diagnostics; it must be non-empty
	// and should be unique across the fleet (hostname+pid works).
	ID string
	// Exec executes one unit.
	Exec Executor
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Token, when non-empty, is the coordinator's shared secret: every
	// request carries it as `Authorization: Bearer <token>`. A
	// coordinator behind dist.RequireToken answers 401 without it.
	Token string
	// Poll is the fallback delay between lease attempts when the
	// coordinator is busy and did not hint one (0 = 200ms).
	Poll time.Duration
	// VerifyEnv, when non-nil, checks the coordinator's declared batch
	// environment (LeaseResponse.Env, forwarded with every granted lease)
	// against this worker's local state before a unit executes — e.g.
	// exp.VerifyScale compares the fleet's experiment scale to the local
	// -quick/-accesses configuration. A verification error is local
	// misconfiguration, not bad work: the worker exits with the error
	// without aborting the batch, and the abandoned lease expires (up to
	// one lease TTL) before a correctly configured peer picks the unit
	// up. Leases that carry no environment skip the check.
	VerifyEnv func(kind string, env json.RawMessage) error
	// OnUnit, when non-nil, observes each successfully reported unit —
	// sweepd uses it for the work-loop ticker.
	OnUnit func(u Unit)
	// Clock supplies the time base for the per-unit execution timing
	// reported to the coordinator (nil = wall clock).
	Clock obs.Clock
}

// Run leases and executes units until the coordinator reports the batch
// done (returns nil), the context ends (returns its error), or a unit
// fails deterministically (the failure is reported to the coordinator and
// returned).
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" || w.ID == "" || w.Exec == nil {
		return fmt.Errorf("dist: worker needs Coordinator, ID and Exec")
	}
	connected := false // a lease has succeeded against this coordinator
	unreachable := 0   // consecutive transport failures while idle
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if err := w.post(ctx, "/v1/lease", leaseRequest{Worker: w.ID}, &lease); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// A transport error against a coordinator we have reached
			// before usually means it exited with the batch; retry a few
			// polls to ride out blips, then report it gone. A coordinator
			// we never reached is a configuration problem, not a shutdown.
			var ue *url.Error
			if connected && errors.As(err, &ue) {
				unreachable++
				if unreachable <= 3 {
					if serr := sleep(ctx, w.retryDelay(0)); serr != nil {
						return serr
					}
					continue
				}
				return fmt.Errorf("%w (worker %s: %v)", ErrCoordinatorGone, w.ID, err)
			}
			return fmt.Errorf("dist: worker %s: lease: %w", w.ID, err)
		}
		connected, unreachable = true, 0
		switch {
		case lease.Done:
			return nil
		case lease.Unit == nil:
			if err := sleep(ctx, w.retryDelay(lease.RetryAfterMS)); err != nil {
				return err
			}
		default:
			if w.VerifyEnv != nil && len(lease.Env) > 0 {
				if err := w.VerifyEnv(lease.Unit.Kind, lease.Env); err != nil {
					return fmt.Errorf("dist: worker %s: %w", w.ID, err)
				}
			}
			err := w.runUnit(ctx, *lease.Unit, time.Duration(lease.LeaseTTLMS)*time.Millisecond)
			switch {
			case errors.Is(err, errLeaseLost):
				// Someone else got the unit; nothing lost, lease again.
			case err != nil:
				return err
			}
		}
	}
}

// retryDelay resolves the coordinator's backoff hint against the local
// fallback.
func (w *Worker) retryDelay(hintMS int64) time.Duration {
	if hintMS > 0 {
		return time.Duration(hintMS) * time.Millisecond
	}
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

// runUnit executes one leased unit under a heartbeat: a background loop
// extends the lease a few times per TTL, and a bounced heartbeat (the
// coordinator re-leased the unit after presuming us dead) cancels the
// execution so the worker stops burning CPU on work someone else owns.
func (w *Worker) runUnit(ctx context.Context, u Unit, ttl time.Duration) error {
	uctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var lost bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-uctx.Done():
				return
			case <-ticker.C:
				var ok map[string]bool
				if err := w.post(uctx, "/v1/heartbeat", heartbeatRequest{Worker: w.ID, Unit: u.ID, Batch: u.Batch}, &ok); err != nil {
					if uctx.Err() == nil {
						lost = true
						cancel()
					}
					return
				}
			}
		}
	}()

	execStart := w.Clock.Now()
	lines, execErr := w.Exec(uctx, u)
	execMS := w.Clock.Now().Sub(execStart).Milliseconds()
	cancel()
	<-hbDone // after this, lost is safely readable

	switch {
	case execErr == nil:
		if got, want := len(lines), u.Range.Len(); got != want {
			return fmt.Errorf("dist: worker %s: unit %d produced %d lines, want %d", w.ID, u.ID, got, want)
		}
		if err := w.postResult(ctx, u, lines, execMS); err != nil {
			return fmt.Errorf("dist: worker %s: reporting unit %d: %w", w.ID, u.ID, err)
		}
		if w.OnUnit != nil {
			w.OnUnit(u)
		}
		return nil
	case lost:
		return errLeaseLost
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		// Deterministic failure: tell the coordinator so it aborts the
		// batch instead of re-leasing the unit forever.
		msg := execErr.Error()
		var ok map[string]bool
		if err := w.post(ctx, "/v1/fail", failRequest{Worker: w.ID, Unit: u.ID, Error: msg, Batch: u.Batch}, &ok); err != nil {
			return fmt.Errorf("dist: worker %s: unit %d failed (%s); reporting the failure also failed: %w", w.ID, u.ID, msg, err)
		}
		return fmt.Errorf("dist: worker %s: unit %d: %s", w.ID, u.ID, msg)
	}
}

// post sends one JSON request and decodes the JSON response. Non-2xx
// responses surface the server's "error" field when present.
func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	w.authorize(req)
	return w.do(req, out)
}

// postResult streams a unit's NDJSON lines to the coordinator, carrying
// the measured execution time so the coordinator's per-unit timing stats
// reflect real work, not lease ages inflated by report latency.
func (w *Worker) postResult(ctx context.Context, u Unit, lines [][]byte, execMS int64) error {
	body := bytes.Join(lines, []byte("\n"))
	body = append(body, '\n')
	// The worker ID is free-form operator input (-id); escape it so an
	// '&' or space cannot corrupt the query string.
	target := fmt.Sprintf("%s/v1/result?worker=%s&unit=%d&exec_ms=%d", w.Coordinator, url.QueryEscape(w.ID), u.ID, execMS)
	if u.Batch != "" {
		target += "&batch=" + url.QueryEscape(u.Batch)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	w.authorize(req)
	var ok map[string]bool
	return w.do(req, &ok)
}

// authorize attaches the shared-secret header when a token is configured.
func (w *Worker) authorize(req *http.Request) {
	if w.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.Token)
	}
}

// do executes one protocol request.
func (w *Worker) do(req *http.Request, out any) error {
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// sleep waits d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
