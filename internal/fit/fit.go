// Package fit provides the regression machinery used to extract the paper's
// analytical leakage and delay models from circuit-level characterization
// data: ordinary least squares, multiple linear regression, and a
// Levenberg–Marquardt nonlinear least-squares solver with numerical
// Jacobians.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// Stats summarizes the quality of a fit.
type Stats struct {
	R2         float64 // coefficient of determination
	RMSE       float64 // root mean squared error
	Iterations int     // solver iterations (nonlinear fits)
}

func (s Stats) String() string {
	return fmt.Sprintf("R2=%.5f RMSE=%.4g iters=%d", s.R2, s.RMSE, s.Iterations)
}

// ErrSingular is returned when a normal-equation system cannot be solved.
var ErrSingular = errors.New("fit: singular system")

// ErrNoConverge is returned when the nonlinear solver exhausts its iteration
// budget without meeting the tolerance. The best parameters found so far are
// still returned alongside it.
var ErrNoConverge = errors.New("fit: did not converge")

// Linear fits y = a + b*x by ordinary least squares.
func Linear(xs, ys []float64) (a, b float64, stats Stats, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, Stats{}, fmt.Errorf("fit: need >= 2 paired samples, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, Stats{}, ErrSingular
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	pred := make([]float64, len(xs))
	for i := range xs {
		pred[i] = a + b*xs[i]
	}
	stats = Evaluate(ys, pred)
	return a, b, stats, nil
}

// Evaluate computes fit statistics for predictions against observations.
func Evaluate(obs, pred []float64) Stats {
	if len(obs) != len(pred) || len(obs) == 0 {
		return Stats{R2: math.NaN(), RMSE: math.NaN()}
	}
	var mean float64
	for _, y := range obs {
		mean += y
	}
	mean /= float64(len(obs))
	var ssRes, ssTot float64
	for i := range obs {
		d := obs[i] - pred[i]
		ssRes += d * d
		t := obs[i] - mean
		ssTot += t * t
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 0 {
		r2 = 0
	}
	return Stats{R2: r2, RMSE: math.Sqrt(ssRes / float64(len(obs)))}
}

// SolveLinear solves the dense system A x = b by Gaussian elimination with
// partial pivoting. A is row-major, square, and is not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("fit: bad system dimensions %dx? vs %d", n, len(b))
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("fit: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-300 {
			return nil, ErrSingular
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// LinearRegression fits y = sum_j coef_j * basis_j(x) by solving the normal
// equations. rows[i] is the basis-function row for observation i.
func LinearRegression(rows [][]float64, ys []float64) ([]float64, Stats, error) {
	if len(rows) != len(ys) || len(rows) == 0 {
		return nil, Stats{}, fmt.Errorf("fit: need paired rows/ys, got %d/%d", len(rows), len(ys))
	}
	k := len(rows[0])
	ata := make([][]float64, k)
	atb := make([]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	for i, row := range rows {
		if len(row) != k {
			return nil, Stats{}, fmt.Errorf("fit: row %d has %d features, want %d", i, len(row), k)
		}
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				ata[a][b] += row[a] * row[b]
			}
			atb[a] += row[a] * ys[i]
		}
	}
	// Tikhonov whisper to keep near-singular systems solvable.
	for i := 0; i < k; i++ {
		ata[i][i] *= 1 + 1e-12
	}
	coef, err := SolveLinear(ata, atb)
	if err != nil {
		return nil, Stats{}, err
	}
	pred := make([]float64, len(ys))
	for i, row := range rows {
		for j := range coef {
			pred[i] += coef[j] * row[j]
		}
	}
	return coef, Evaluate(ys, pred), nil
}

// Model is a parametric scalar function of a feature vector.
type Model func(params []float64, x []float64) float64

// LMOptions configures the Levenberg–Marquardt solver.
type LMOptions struct {
	MaxIterations int     // default 200
	Tolerance     float64 // relative SSE improvement to stop, default 1e-12
	InitialLambda float64 // default 1e-3
	// Weights scales each residual (optional, len == observations).
	Weights []float64
	// Lower and Upper clamp parameters after each step (optional).
	Lower, Upper []float64
}

func (o LMOptions) withDefaults() LMOptions {
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-12
	}
	if o.InitialLambda == 0 {
		o.InitialLambda = 1e-3
	}
	return o
}

// LevenbergMarquardt minimizes sum_i w_i*(model(p, xs[i]) - ys[i])^2 over p,
// starting from p0. It returns the best parameters found, fit statistics,
// and an error when the system is singular or the iteration budget is
// exhausted far from a stationary point.
func LevenbergMarquardt(model Model, xs [][]float64, ys []float64, p0 []float64, opts LMOptions) ([]float64, Stats, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, Stats{}, fmt.Errorf("fit: need paired samples, got %d/%d", len(xs), len(ys))
	}
	if len(p0) == 0 {
		return nil, Stats{}, errors.New("fit: empty initial parameter vector")
	}
	opts = opts.withDefaults()
	np := len(p0)
	p := append([]float64(nil), p0...)

	weight := func(i int) float64 {
		if opts.Weights != nil {
			return opts.Weights[i]
		}
		return 1
	}
	clampP := func(p []float64) {
		for i := range p {
			if opts.Lower != nil && p[i] < opts.Lower[i] {
				p[i] = opts.Lower[i]
			}
			if opts.Upper != nil && p[i] > opts.Upper[i] {
				p[i] = opts.Upper[i]
			}
		}
	}

	sse := func(p []float64) float64 {
		var s float64
		for i := range xs {
			r := (model(p, xs[i]) - ys[i]) * weight(i)
			s += r * r
		}
		return s
	}

	lambda := opts.InitialLambda
	curSSE := sse(p)
	iters := 0
	converged := false

	for ; iters < opts.MaxIterations; iters++ {
		// Residuals and numerical Jacobian.
		res := make([]float64, len(xs))
		jac := make([][]float64, len(xs))
		for i := range xs {
			res[i] = (ys[i] - model(p, xs[i])) * weight(i)
			jac[i] = make([]float64, np)
			for j := 0; j < np; j++ {
				h := 1e-6 * math.Max(math.Abs(p[j]), 1e-6)
				pj := append([]float64(nil), p...)
				pj[j] += h
				jac[i][j] = (model(pj, xs[i]) - model(p, xs[i])) * weight(i) / h
			}
		}
		// Normal equations (JtJ + lambda*diag(JtJ)) d = Jt r.
		jtj := make([][]float64, np)
		jtr := make([]float64, np)
		for a := 0; a < np; a++ {
			jtj[a] = make([]float64, np)
		}
		for i := range xs {
			for a := 0; a < np; a++ {
				for b := 0; b < np; b++ {
					jtj[a][b] += jac[i][a] * jac[i][b]
				}
				jtr[a] += jac[i][a] * res[i]
			}
		}
		improved := false
		for attempt := 0; attempt < 12; attempt++ {
			damped := make([][]float64, np)
			for a := 0; a < np; a++ {
				damped[a] = append([]float64(nil), jtj[a]...)
				diag := jtj[a][a]
				if diag == 0 {
					diag = 1e-12
				}
				damped[a][a] += lambda * diag
			}
			delta, err := SolveLinear(damped, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			cand := make([]float64, np)
			for j := range cand {
				cand[j] = p[j] + delta[j]
			}
			clampP(cand)
			candSSE := sse(cand)
			if candSSE < curSSE {
				rel := (curSSE - candSSE) / math.Max(curSSE, 1e-300)
				p = cand
				curSSE = candSSE
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < opts.Tolerance {
					converged = true
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			converged = true // stuck at a (local) minimum
		}
		if converged {
			break
		}
	}

	pred := make([]float64, len(ys))
	for i := range xs {
		pred[i] = model(p, xs[i])
	}
	stats := Evaluate(ys, pred)
	stats.Iterations = iters + 1
	if !converged {
		return p, stats, ErrNoConverge
	}
	return p, stats, nil
}
