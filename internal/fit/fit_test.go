package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, stats, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Errorf("fit = %v + %v x, want 1 + 2x", a, b)
	}
	if stats.R2 < 1-1e-12 {
		t.Errorf("R2 = %v, want 1", stats.R2)
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 5-3*x+rng.NormFloat64()*0.1)
	}
	a, b, stats, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-5) > 0.1 || math.Abs(b+3) > 0.02 {
		t.Errorf("fit = %v + %v x, want ~5 - 3x", a, b)
	}
	if stats.R2 < 0.999 {
		t.Errorf("R2 = %v", stats.R2)
	}
}

func TestLinearErrors(t *testing.T) {
	if _, _, _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, _, _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should be singular")
	}
	if _, _, _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Leading zero forces a pivot swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular matrix should error")
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != 3 || b[0] != 5 {
		t.Error("inputs were mutated")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonally dominant: well-conditioned
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			for j := range xTrue {
				b[i] += a[i][j] * xTrue[j]
			}
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLinearRegressionMultiBasis(t *testing.T) {
	// y = 2 + 3a - b over a small grid.
	var rows [][]float64
	var ys []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			rows = append(rows, []float64{1, a, b})
			ys = append(ys, 2+3*a-b)
		}
	}
	coef, stats, err := LinearRegression(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(coef[i]-want[i]) > 1e-9 {
			t.Errorf("coef[%d] = %v, want %v", i, coef[i], want[i])
		}
	}
	if stats.R2 < 1-1e-9 {
		t.Errorf("R2 = %v", stats.R2)
	}
}

func TestEvaluatePerfectAndConstant(t *testing.T) {
	s := Evaluate([]float64{1, 2, 3}, []float64{1, 2, 3})
	if s.R2 != 1 || s.RMSE != 0 {
		t.Errorf("perfect fit stats = %+v", s)
	}
	// Constant observations, perfect predictions: R2 = 1 by convention.
	s = Evaluate([]float64{2, 2, 2}, []float64{2, 2, 2})
	if s.R2 != 1 {
		t.Errorf("constant-perfect R2 = %v", s.R2)
	}
	// Constant observations, wrong predictions: R2 = 0 by convention.
	s = Evaluate([]float64{2, 2, 2}, []float64{3, 3, 3})
	if s.R2 != 0 {
		t.Errorf("constant-wrong R2 = %v", s.R2)
	}
}

func expModel(p []float64, x []float64) float64 {
	// y = p0 + p1*exp(p2*x)
	return p[0] + p[1]*math.Exp(p[2]*x[0])
}

func TestLMRecoverExponential(t *testing.T) {
	truth := []float64{1.5, 2.0, -3.0}
	var xs [][]float64
	var ys []float64
	for x := 0.0; x <= 2; x += 0.05 {
		xs = append(xs, []float64{x})
		ys = append(ys, expModel(truth, []float64{x}))
	}
	p, stats, err := LevenbergMarquardt(expModel, xs, ys, []float64{1, 1, -1}, LMOptions{})
	if err != nil {
		t.Fatalf("LM: %v (stats %v)", err, stats)
	}
	for i := range truth {
		if math.Abs(p[i]-truth[i]) > 1e-6 {
			t.Errorf("p[%d] = %v, want %v", i, p[i], truth[i])
		}
	}
	if stats.R2 < 1-1e-10 {
		t.Errorf("R2 = %v", stats.R2)
	}
}

func TestLMNoisyTwoExponentials(t *testing.T) {
	// The paper's leakage form: y = A0 + A1 e^{a1 v} + A2 e^{a2 t}.
	model := func(p []float64, x []float64) float64 {
		return p[0] + p[1]*math.Exp(p[2]*x[0]) + p[3]*math.Exp(p[4]*x[1])
	}
	truth := []float64{0.2, 30, -20, 500, -1.0}
	rng := rand.New(rand.NewSource(42))
	var xs [][]float64
	var ys []float64
	for v := 0.2; v <= 0.5; v += 0.05 {
		for tox := 10.0; tox <= 14; tox += 1 {
			xs = append(xs, []float64{v, tox})
			y := model(truth, []float64{v, tox})
			ys = append(ys, y*(1+0.001*rng.NormFloat64()))
		}
	}
	p0 := []float64{0, 10, -10, 100, -0.5}
	p, stats, err := LevenbergMarquardt(model, xs, ys, p0, LMOptions{MaxIterations: 500})
	if err != nil {
		t.Fatalf("LM: %v (stats %v)", err, stats)
	}
	if stats.R2 < 0.999 {
		t.Errorf("R2 = %v, params %v", stats.R2, p)
	}
}

func TestLMWithBounds(t *testing.T) {
	// Constrain the decay rate to be negative.
	var xs [][]float64
	var ys []float64
	for x := 0.0; x <= 1; x += 0.1 {
		xs = append(xs, []float64{x})
		ys = append(ys, 2*math.Exp(-1.5*x))
	}
	model := func(p, x []float64) float64 { return p[0] * math.Exp(p[1]*x[0]) }
	p, _, err := LevenbergMarquardt(model, xs, ys, []float64{1, -0.1},
		LMOptions{Lower: []float64{0, -10}, Upper: []float64{100, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if p[1] > 0 {
		t.Errorf("bound violated: %v", p)
	}
	if math.Abs(p[0]-2) > 1e-4 || math.Abs(p[1]+1.5) > 1e-4 {
		t.Errorf("params = %v, want [2 -1.5]", p)
	}
}

func TestLMErrors(t *testing.T) {
	model := func(p, x []float64) float64 { return p[0] }
	if _, _, err := LevenbergMarquardt(model, nil, nil, []float64{1}, LMOptions{}); err == nil {
		t.Error("no samples should error")
	}
	if _, _, err := LevenbergMarquardt(model, [][]float64{{1}}, []float64{1}, nil, LMOptions{}); err == nil {
		t.Error("no params should error")
	}
}

func TestLMWeights(t *testing.T) {
	// Two inconsistent observations; the heavier one wins.
	model := func(p, x []float64) float64 { return p[0] }
	xs := [][]float64{{0}, {0}}
	ys := []float64{0, 10}
	p, _, err := LevenbergMarquardt(model, xs, ys, []float64{5},
		LMOptions{Weights: []float64{1, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] < 9.9 {
		t.Errorf("weighted fit = %v, want ~10", p[0])
	}
}

func TestEvaluateR2Bounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		obs := make([]float64, n)
		pred := make([]float64, n)
		for i := range obs {
			obs[i] = rng.NormFloat64()
			pred[i] = rng.NormFloat64()
		}
		s := Evaluate(obs, pred)
		// R2 can be negative for terrible fits but never above 1; RMSE >= 0.
		return s.R2 <= 1+1e-12 && s.RMSE >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
