// Package units provides physical constants, unit conversion helpers, and
// value formatting used throughout the cache leakage models.
//
// Internally the library works in SI units: volts, amperes, watts, seconds,
// joules, metres, kelvin. This package centralises the handful of scale
// factors (angstroms, picoseconds, picojoules, milliwatts, ...) so that the
// rest of the code never multiplies by bare powers of ten.
package units

import (
	"fmt"
	"math"
)

// Fundamental physical constants (SI).
const (
	// BoltzmannJPerK is the Boltzmann constant in joules per kelvin.
	BoltzmannJPerK = 1.380649e-23
	// ElectronCharge is the elementary charge in coulombs.
	ElectronCharge = 1.602176634e-19
	// VacuumPermittivity is epsilon_0 in farads per metre.
	VacuumPermittivity = 8.8541878128e-12
	// SiO2RelativePermittivity is the relative permittivity of silicon dioxide.
	SiO2RelativePermittivity = 3.9
)

// Length scale factors, in metres.
const (
	Angstrom   = 1e-10
	Nanometre  = 1e-9
	Micrometre = 1e-6
)

// Time scale factors, in seconds.
const (
	Picosecond = 1e-12
	Nanosecond = 1e-9
)

// Power and energy scale factors.
const (
	Milliwatt  = 1e-3
	Microwatt  = 1e-6
	Nanowatt   = 1e-9
	Picojoule  = 1e-12
	Femtojoule = 1e-15
)

// ThermalVoltage returns kT/q in volts at the given temperature in kelvin.
func ThermalVoltage(tempK float64) float64 {
	return BoltzmannJPerK * tempK / ElectronCharge
}

// OxideCapacitancePerArea returns the SiO2 parallel-plate capacitance per
// unit area (F/m^2) for an electrical oxide thickness given in metres.
func OxideCapacitancePerArea(toxM float64) float64 {
	return SiO2RelativePermittivity * VacuumPermittivity / toxM
}

// ToPS converts seconds to picoseconds.
func ToPS(s float64) float64 { return s / Picosecond }

// FromPS converts picoseconds to seconds.
func FromPS(ps float64) float64 { return ps * Picosecond }

// ToMW converts watts to milliwatts.
func ToMW(w float64) float64 { return w / Milliwatt }

// FromMW converts milliwatts to watts.
func FromMW(mw float64) float64 { return mw * Milliwatt }

// ToPJ converts joules to picojoules.
func ToPJ(j float64) float64 { return j / Picojoule }

// FromPJ converts picojoules to joules.
func FromPJ(pj float64) float64 { return pj * Picojoule }

// ToAngstrom converts metres to angstroms.
func ToAngstrom(m float64) float64 { return m / Angstrom }

// FromAngstrom converts angstroms to metres.
func FromAngstrom(a float64) float64 { return a * Angstrom }

// FormatSI formats v with an SI prefix and the given unit suffix, e.g.
// FormatSI(1.3e-3, "W") == "1.300mW". Values of exactly zero format as "0unit".
func FormatSI(v float64, unit string) string {
	if v == 0 {
		return "0" + unit
	}
	abs := math.Abs(v)
	type prefix struct {
		factor float64
		name   string
	}
	prefixes := []prefix{
		{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""},
		{1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
	}
	for _, p := range prefixes {
		if abs >= p.factor {
			return fmt.Sprintf("%.3g%s%s", v/p.factor, p.name, unit)
		}
	}
	return fmt.Sprintf("%.3g%s", v, unit)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree to within rel relative tolerance
// (or abs absolute tolerance near zero).
func ApproxEqual(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2; Linspace panics otherwise because a degenerate grid is
// always a programming error in this library.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("units: Linspace requires n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// GridSteps returns the inclusive grid from lo to hi with the given step.
// The last point is forced to hi when the step does not divide the range
// exactly within floating-point tolerance.
func GridSteps(lo, hi, step float64) []float64 {
	if step <= 0 {
		panic("units: GridSteps requires step > 0")
	}
	if hi < lo {
		panic("units: GridSteps requires hi >= lo")
	}
	n := int(math.Floor((hi-lo)/step + 1e-9))
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, lo+float64(i)*step)
	}
	if last := out[len(out)-1]; math.Abs(last-hi) > step*1e-6 && last < hi {
		out = append(out, hi)
	} else {
		out[len(out)-1] = hi
	}
	return out
}
