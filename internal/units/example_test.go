package units_test

import (
	"fmt"

	"repro/internal/units"
)

func ExampleFormatSI() {
	fmt.Println(units.FormatSI(1.9612e-2, "W"))
	fmt.Println(units.FormatSI(5.54e-10, "s"))
	fmt.Println(units.FormatSI(2.16e-11, "J"))
	// Output:
	// 19.6mW
	// 554ps
	// 21.6pJ
}

func ExampleGridSteps() {
	for _, tox := range units.GridSteps(10, 14, 1) {
		fmt.Printf("%.0fA ", tox)
	}
	fmt.Println()
	// Output:
	// 10A 11A 12A 13A 14A
}

func ExampleThermalVoltage() {
	fmt.Printf("kT/q at 300K = %.1f mV\n", units.ThermalVoltage(300)*1e3)
	// Output:
	// kT/q at 300K = 25.9 mV
}
