package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThermalVoltage(t *testing.T) {
	got := ThermalVoltage(300)
	if !ApproxEqual(got, 0.02585, 1e-3, 0) {
		t.Errorf("ThermalVoltage(300K) = %v, want ~0.02585 V", got)
	}
	got = ThermalVoltage(358)
	if !ApproxEqual(got, 0.03085, 1e-3, 0) {
		t.Errorf("ThermalVoltage(358K) = %v, want ~0.03085 V", got)
	}
}

func TestThermalVoltageMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		ta := 250 + math.Mod(math.Abs(a), 200) // 250..450 K
		tb := 250 + math.Mod(math.Abs(b), 200)
		if ta == tb {
			return true
		}
		lo, hi := math.Min(ta, tb), math.Max(ta, tb)
		return ThermalVoltage(lo) < ThermalVoltage(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOxideCapacitance(t *testing.T) {
	// 10 A of SiO2: Cox = 3.9 * 8.854e-12 / 1e-9 = 3.45e-2 F/m^2.
	got := OxideCapacitancePerArea(FromAngstrom(10))
	if !ApproxEqual(got, 3.453e-2, 1e-3, 0) {
		t.Errorf("Cox(10A) = %v F/m^2, want ~3.45e-2", got)
	}
	// Thicker oxide -> smaller capacitance.
	if OxideCapacitancePerArea(FromAngstrom(14)) >= got {
		t.Error("Cox must decrease with Tox")
	}
}

func TestUnitRoundTrips(t *testing.T) {
	cases := []struct {
		to, from func(float64) float64
		name     string
	}{
		{ToPS, FromPS, "ps"},
		{ToMW, FromMW, "mW"},
		{ToPJ, FromPJ, "pJ"},
		{ToAngstrom, FromAngstrom, "angstrom"},
	}
	for _, c := range cases {
		for _, v := range []float64{0, 1, 1e-12, 3.7e5, -2.5} {
			if got := c.from(c.to(v)); !ApproxEqual(got, v, 1e-12, 1e-300) {
				t.Errorf("%s round trip of %v = %v", c.name, v, got)
			}
		}
	}
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{0, "W", "0W"},
		{1.3e-3, "W", "1.3mW"},
		{2.5e-12, "J", "2.5pJ"},
		{4.2e3, "Hz", "4.2kHz"},
		{1, "V", "1V"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, c.unit); got != c.want {
			t.Errorf("FormatSI(%v,%q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		c := Clamp(v, -1, 1)
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !ApproxEqual(got[i], want[i], 1e-12, 1e-15) {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got[len(got)-1] != 1 {
		t.Error("Linspace must end exactly at hi")
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Linspace(0,1,1) should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestGridSteps(t *testing.T) {
	got := GridSteps(10, 14, 0.5)
	if len(got) != 9 {
		t.Fatalf("GridSteps(10,14,0.5) has %d points, want 9: %v", len(got), got)
	}
	if got[0] != 10 || got[len(got)-1] != 14 {
		t.Errorf("endpoints = %v, %v", got[0], got[len(got)-1])
	}
	// Non-dividing step still terminates at hi.
	got = GridSteps(0.2, 0.5, 0.07)
	if got[len(got)-1] != 0.5 {
		t.Errorf("last = %v, want 0.5", got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("grid not strictly increasing at %d: %v", i, got)
		}
	}
}

func TestGridStepsSinglePoint(t *testing.T) {
	got := GridSteps(1, 1, 0.5)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("GridSteps(1,1,0.5) = %v, want [1]", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0000001, 1e-6, 0) {
		t.Error("values within rel tolerance should compare equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-6, 0) {
		t.Error("values outside tolerance should not compare equal")
	}
	if !ApproxEqual(0, 1e-300, 1e-6, 1e-12) {
		t.Error("near-zero values should use absolute tolerance")
	}
}
