// Package sram provides transistor-level netlists and electrical parameters
// for the SRAM structures of the cache model: the 6T storage cell, sense
// amplifier, bitline precharge, and column multiplexer.
//
// The 6T cell is the dominant leakage source of a cache ("a large number of
// potentially high-leakage cross-coupled inverters", as the paper's
// introduction puts it), so its DC leakage states are modelled explicitly:
// in a stored state exactly three transistors conduct subthreshold current
// across the full supply, and the two conducting devices tunnel through
// their gate oxide.
package sram

import (
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/units"
)

// CellParams describes a 6T cell design at the reference (thin-oxide)
// geometry. All widths and dimensions scale with Tox via the technology's
// ScaleFactor, as required by the paper's stability argument: the drawn
// lengths grow with Tox, and the widths must follow to preserve the cell's
// static noise margin, so the cell grows in both directions.
type CellParams struct {
	WPullDown float64 // NMOS pull-down width
	WPass     float64 // NMOS access (pass-gate) width
	WPullUp   float64 // PMOS pull-up width

	WidthM  float64 // cell footprint width (wordline direction)
	HeightM float64 // cell footprint height (bitline direction)
}

// DefaultCell returns a 65 nm-class 6T cell: ~0.6 um^2 with the usual
// PD > PG >= PU sizing for read stability.
func DefaultCell() CellParams {
	return CellParams{
		WPullDown: 120 * units.Nanometre,
		WPass:     80 * units.Nanometre,
		WPullUp:   80 * units.Nanometre,
		WidthM:    1.2 * units.Micrometre,
		HeightM:   0.5 * units.Micrometre,
	}
}

// Netlist returns the leakage netlist of one cell holding a stable value
// with both bitlines precharged high (the standby state of an idle row).
//
// Label the internal nodes L (storing 0) and R (storing 1):
//   - pass transistor at L: off, Vds = Vdd (bitline high, node low) — leaks.
//   - pass transistor at R: off, Vds = 0 — no subthreshold path.
//   - pull-down at R's inverter (gate at L=0): off, Vds = Vdd — leaks.
//   - pull-up at L's inverter (gate at R=1): off, Vsd = Vdd — leaks.
//   - pull-down at L's inverter: ON (gate at R=1) — full-area gate tunnelling.
//   - pull-up at R's inverter: ON (gate at L=0) — full-area gate tunnelling.
func (c CellParams) Netlist() *circuit.Netlist {
	n := &circuit.Netlist{Name: "cell6t"}
	n.AddElement(circuit.Element{Name: "pg.l.off", Kind: device.NMOS, WidthM: c.WPass, State: circuit.StateOff, VFrac: 1})
	n.AddElement(circuit.Element{Name: "pg.r.off", Kind: device.NMOS, WidthM: c.WPass, State: circuit.StateOff, VFrac: 0})
	n.AddElement(circuit.Element{Name: "pd.r.off", Kind: device.NMOS, WidthM: c.WPullDown, State: circuit.StateOff, VFrac: 1})
	n.AddElement(circuit.Element{Name: "pu.l.off", Kind: device.PMOS, WidthM: c.WPullUp, State: circuit.StateOff, VFrac: 1})
	n.AddElement(circuit.Element{Name: "pd.l.on", Kind: device.NMOS, WidthM: c.WPullDown, State: circuit.StateOn, VFrac: 1})
	n.AddElement(circuit.Element{Name: "pu.r.on", Kind: device.PMOS, WidthM: c.WPullUp, State: circuit.StateOn, VFrac: 1})
	return n
}

// ReadCurrent returns the effective bitline discharge current of the cell
// during a read: the series pass-gate/pull-down path, approximated as 80% of
// the weaker device's saturation current. The pass gate's overdrive is
// derated by the storage-node voltage (device.CellReadDerate), so cell read
// speed falls off with Vth much faster than peripheral logic — the reason a
// single shared Vth cannot serve both the array and the periphery.
func (c CellParams) ReadCurrent(t *device.Technology, op device.OperatingPoint) float64 {
	ipass := t.OnCurrentDerated(device.NMOS, c.WPass, op, device.CellReadDerate)
	ipd := t.OnCurrent(device.NMOS, c.WPullDown, op)
	weaker := ipass
	if ipd < weaker {
		weaker = ipd
	}
	return 0.8 * weaker
}

// Dims returns the scaled cell footprint (width, height) at the operating
// point. Both dimensions grow linearly with Tox.
func (c CellParams) Dims(t *device.Technology, op device.OperatingPoint) (w, h float64) {
	s := t.ScaleFactor(op)
	return c.WidthM * s, c.HeightM * s
}

// Area returns the scaled cell area at the operating point (grows as s^2).
func (c CellParams) Area(t *device.Technology, op device.OperatingPoint) float64 {
	w, h := c.Dims(t, op)
	return w * h
}

// BitlineCapPerCell returns the capacitance one cell adds to its bitline:
// the pass-gate junction plus the wire capacitance of one cell height.
func (c CellParams) BitlineCapPerCell(t *device.Technology, op device.OperatingPoint) float64 {
	_, h := c.Dims(t, op)
	return t.JunctionCap(c.WPass, op) + t.WireCPerM*h
}

// WordlineCapPerCell returns the capacitance one cell adds to its wordline:
// two pass-gate gates plus the wire capacitance of one cell width.
func (c CellParams) WordlineCapPerCell(t *device.Technology, op device.OperatingPoint) float64 {
	w, _ := c.Dims(t, op)
	return 2*t.GateCap(c.WPass, op) + t.WireCPerM*w
}

// DrowsyRetentionFrac is the retention supply of a drowsy cell as a
// fraction of Vdd (Flautner et al., ISCA'02 use ~0.3).
const DrowsyRetentionFrac = 0.3

// DrowsyNetlist returns the cell's leakage netlist in the drowsy state: the
// cell supply is collapsed to the retention voltage, so every off
// transistor sees only DrowsyRetentionFrac*Vdd of drain bias (killing both
// the DIBL boost and most of the drain-field leakage) and the conducting
// transistors tunnel at the reduced oxide voltage. This implements the
// dynamic counterpart of the paper's static knobs, from its related work
// [6]; see the drowsy extension experiment.
func (c CellParams) DrowsyNetlist() *circuit.Netlist {
	v := DrowsyRetentionFrac
	n := &circuit.Netlist{Name: "cell6t-drowsy"}
	n.AddElement(circuit.Element{Name: "pg.l.off", Kind: device.NMOS, WidthM: c.WPass, State: circuit.StateOff, VFrac: v})
	n.AddElement(circuit.Element{Name: "pg.r.off", Kind: device.NMOS, WidthM: c.WPass, State: circuit.StateOff, VFrac: 0})
	n.AddElement(circuit.Element{Name: "pd.r.off", Kind: device.NMOS, WidthM: c.WPullDown, State: circuit.StateOff, VFrac: v})
	n.AddElement(circuit.Element{Name: "pu.l.off", Kind: device.PMOS, WidthM: c.WPullUp, State: circuit.StateOff, VFrac: v})
	n.AddElement(circuit.Element{Name: "pd.l.on", Kind: device.NMOS, WidthM: c.WPullDown, State: circuit.StateOn, VFrac: v})
	n.AddElement(circuit.Element{Name: "pu.r.on", Kind: device.PMOS, WidthM: c.WPullUp, State: circuit.StateOn, VFrac: v})
	return n
}

// SenseAmp returns the leakage netlist of one latch-type sense amplifier in
// its idle (disabled, inputs equalized high) state: the latch NMOS pair sits
// above an off enable transistor (two-deep stack), the latch PMOS pair
// conducts (gate tunnelling), and the equalization PMOS is on.
func SenseAmp(t *device.Technology) *circuit.Netlist {
	w := 4 * t.WMin // sense amps use wider devices for offset control
	n := &circuit.Netlist{Name: "senseamp"}
	n.AddElement(circuit.Element{Name: "latch.n.off", Kind: device.NMOS, WidthM: w, State: circuit.StateOff, VFrac: 1, Stack: 2, Count: 2})
	n.AddElement(circuit.Element{Name: "en.off", Kind: device.NMOS, WidthM: 2 * w, State: circuit.StateOff, VFrac: 1, Stack: 2})
	n.AddElement(circuit.Element{Name: "latch.p.on", Kind: device.PMOS, WidthM: w, State: circuit.StateOn, VFrac: 1, Count: 2})
	n.AddElement(circuit.Element{Name: "eq.p.on", Kind: device.PMOS, WidthM: w, State: circuit.StateOn, VFrac: 1})
	return n
}

// SenseDelay returns the sense amplifier resolution time: the time for the
// latch to regenerate a BitlineSwing differential, approximated as a few
// gate delays of its own devices.
func SenseDelay(t *device.Technology, op device.OperatingPoint) float64 {
	// Latch regeneration ~ 3 time constants of a 4x inverter loaded by its twin.
	w := 4 * t.WMin
	r := t.DriveResistance(device.NMOS, w, op)
	cl := t.GateCap(w*(1+circuit.BetaP), op) + t.JunctionCap(w*(1+circuit.BetaP), op)
	return 3 * r * cl
}

// Precharge returns the leakage netlist of one column's precharge/equalize
// trio. The PMOS devices are on while the array idles (bitlines held high),
// so they contribute gate tunnelling.
func Precharge(t *device.Technology) *circuit.Netlist {
	w := 2 * t.WMin
	n := &circuit.Netlist{Name: "precharge"}
	n.AddElement(circuit.Element{Name: "pre.on", Kind: device.PMOS, WidthM: w, State: circuit.StateOn, VFrac: 1, Count: 2})
	n.AddElement(circuit.Element{Name: "eq.on", Kind: device.PMOS, WidthM: w, State: circuit.StateOn, VFrac: 1})
	return n
}

// ColumnMux returns the leakage netlist of one column-multiplexer pass
// transistor. With both bitlines precharged high the pass device sees no
// drain-source drop, so it contributes (almost) nothing; it is kept in the
// netlist for completeness of the transistor inventory.
func ColumnMux(t *device.Technology) *circuit.Netlist {
	w := 4 * t.WMin
	n := &circuit.Netlist{Name: "colmux"}
	n.AddElement(circuit.Element{Name: "mux.off", Kind: device.NMOS, WidthM: w, State: circuit.StateOff, VFrac: 0})
	return n
}

// BitlineSwing is the differential (as a fraction of Vdd) a bitline must
// develop before the sense amplifier can resolve it.
const BitlineSwing = 0.1
