package sram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/units"
)

func tech() *device.Technology { return device.Default65nm() }

func TestCellNetlistInventory(t *testing.T) {
	c := DefaultCell()
	n := c.Netlist()
	if got := n.CountTransistors(); got != 6 {
		t.Errorf("6T cell has %v transistors", got)
	}
}

func TestCellLeakagePaths(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	op := device.OP(0.20, 10)
	l := c.Netlist().LeakagePower(tc, op)

	// Exactly three full-Vds subthreshold paths: PG(l), PD(r), PU(l).
	wantSub := (tc.OffCurrent(device.NMOS, c.WPass, op) +
		tc.OffCurrent(device.NMOS, c.WPullDown, op) +
		tc.OffCurrent(device.PMOS, c.WPullUp, op)) * tc.Vdd
	// StateOff elements add overlap gate leakage, so compare subthreshold only.
	if !units.ApproxEqual(l.SubthresholdW, wantSub, 1e-9, 0) {
		t.Errorf("cell subthreshold = %v, want %v", l.SubthresholdW, wantSub)
	}

	// Gate leakage comes from the two ON devices plus off-state overlap.
	minGate := (tc.GateLeakCurrent(device.NMOS, c.WPullDown, op, tc.Vdd) +
		tc.GateLeakCurrent(device.PMOS, c.WPullUp, op, tc.Vdd)) * tc.Vdd
	if l.GateW < minGate {
		t.Errorf("cell gate leakage %v below ON-device floor %v", l.GateW, minGate)
	}
}

func TestCellLeakageMagnitude(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	// At the fast corner a 65nm cell leaks tens of nanowatts (I*V with
	// ~100 nA of total current); at the slow corner well under a nanowatt
	// of subthreshold.
	fast := c.Netlist().LeakagePower(tc, device.OP(0.20, 10))
	if fast.Total() < 20e-9 || fast.Total() > 500e-9 {
		t.Errorf("fast-corner cell leakage = %v W, want 20..500 nW", fast.Total())
	}
	slow := c.Netlist().LeakagePower(tc, device.OP(0.50, 14))
	if slow.Total() > fast.Total()/50 {
		t.Errorf("slow corner %v not << fast corner %v", slow.Total(), fast.Total())
	}
}

func TestGateVsSubthresholdCrossover(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	// The paper's premise: at thin Tox and high Vth, gate leakage can
	// surpass subthreshold leakage.
	l := c.Netlist().LeakagePower(tc, device.OP(0.50, 10))
	if l.GateW <= l.SubthresholdW {
		t.Errorf("at (0.5V, 10A) gate %v should exceed subthreshold %v", l.GateW, l.SubthresholdW)
	}
	// And at thick Tox, low Vth, subthreshold dominates.
	l = c.Netlist().LeakagePower(tc, device.OP(0.20, 14))
	if l.SubthresholdW <= l.GateW {
		t.Errorf("at (0.2V, 14A) subthreshold %v should exceed gate %v", l.SubthresholdW, l.GateW)
	}
}

func TestReadCurrent(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	fast := c.ReadCurrent(tc, device.OP(0.20, 10))
	slow := c.ReadCurrent(tc, device.OP(0.50, 14))
	if fast <= 0 || slow <= 0 {
		t.Fatal("read currents must be positive")
	}
	if slow >= fast {
		t.Error("read current must fall at the slow corner")
	}
	// The pass gate (80 nm) limits: 0.8 * 600uA/um * 0.08um = ~38 uA.
	if fast < 10e-6 || fast > 100e-6 {
		t.Errorf("fast read current = %v A, want 10..100 uA", fast)
	}
}

func TestCellGeometryScaling(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	a10 := c.Area(tc, device.OP(0.3, 10))
	a14 := c.Area(tc, device.OP(0.3, 14))
	s := tc.ScaleFactor(device.OP(0.3, 14))
	if !units.ApproxEqual(a14/a10, s*s, 1e-9, 0) {
		t.Errorf("area scale = %v, want %v", a14/a10, s*s)
	}
	w10, h10 := c.Dims(tc, device.OP(0.3, 10))
	if !units.ApproxEqual(w10, c.WidthM, 1e-12, 0) || !units.ApproxEqual(h10, c.HeightM, 1e-12, 0) {
		t.Error("dims at ToxMin must equal reference dims")
	}
}

func TestLoadCapsGrowWithTox(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	f := func(a, b float64) bool {
		fa := math.Abs(math.Mod(a, 1))
		fb := math.Abs(math.Mod(b, 1))
		t1 := tc.ToxMin + fa*(tc.ToxMax-tc.ToxMin)
		t2 := tc.ToxMin + fb*(tc.ToxMax-tc.ToxMin)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 == t2 {
			return true
		}
		op1 := device.OperatingPoint{Vth: 0.3, ToxM: t1}
		op2 := device.OperatingPoint{Vth: 0.3, ToxM: t2}
		return c.BitlineCapPerCell(tc, op1) < c.BitlineCapPerCell(tc, op2) &&
			c.WordlineCapPerCell(tc, op1) < c.WordlineCapPerCell(tc, op2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("per-cell load caps must grow with Tox: %v", err)
	}
}

func TestBitlineCapMagnitude(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	cb := c.BitlineCapPerCell(tc, device.OP(0.3, 10))
	// Junction (~0.06 fF) + wire (~0.1 fF) per cell: 0.05..0.5 fF plausible.
	if cb < 0.05e-15 || cb > 0.5e-15 {
		t.Errorf("bitline cap per cell = %v F, want 0.05..0.5 fF", cb)
	}
}

func TestSenseAmpAndPrechargeLeak(t *testing.T) {
	tc := tech()
	op := device.OP(0.25, 10)
	sa := SenseAmp(tc).LeakagePower(tc, op)
	if sa.Total() <= 0 {
		t.Error("sense amp must leak")
	}
	pre := Precharge(tc).LeakagePower(tc, op)
	if pre.GateW <= 0 {
		t.Error("precharge PMOS must show gate tunnelling")
	}
	if pre.SubthresholdW != 0 {
		t.Errorf("idle precharge has no off path, got %v", pre.SubthresholdW)
	}
	// Column mux with zero Vds must contribute ~nothing.
	mux := ColumnMux(tc).LeakagePower(tc, op)
	if mux.Total() != 0 {
		t.Errorf("idle column mux should not leak, got %v", mux.Total())
	}
}

func TestSenseDelayOrdersCorrectly(t *testing.T) {
	tc := tech()
	fast := SenseDelay(tc, device.OP(0.20, 10))
	slow := SenseDelay(tc, device.OP(0.50, 14))
	if fast <= 0 || slow <= fast {
		t.Errorf("sense delay fast=%v slow=%v", fast, slow)
	}
	// Should be tens of ps, well under the full access time.
	if fast > 200*units.Picosecond {
		t.Errorf("sense delay %v ps too large", units.ToPS(fast))
	}
}

func TestCellLeakageMonotoneVth(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	vths := units.GridSteps(tc.VthMin, tc.VthMax, 0.025)
	prev := math.Inf(1)
	for _, v := range vths {
		l := c.Netlist().LeakagePower(tc, device.OperatingPoint{Vth: v, ToxM: tc.ToxMin}).Total()
		if l >= prev {
			t.Errorf("cell leakage not decreasing at Vth=%v", v)
		}
		prev = l
	}
}

func TestCellLeakageMonotoneTox(t *testing.T) {
	tc := tech()
	c := DefaultCell()
	toxs := units.GridSteps(10, 14, 0.25)
	prev := math.Inf(1)
	for _, x := range toxs {
		l := c.Netlist().LeakagePower(tc, device.OP(0.35, x)).Total()
		if l >= prev {
			t.Errorf("cell leakage not decreasing at Tox=%vA", x)
		}
		prev = l
	}
}
