// Package repro benchmarks regenerate every table and figure of the paper's
// evaluation (see DESIGN.md section 4 for the experiment index) and measure
// the substrates they are built from. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"sync"
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/exp"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Shared fixtures, built once outside the timed regions.
var (
	fixOnce sync.Once
	fixEnv  *exp.Env
	fixL1   *model.CacheModel
	fixL2   *model.CacheModel
	fixSys  *opt.MemorySystem
	fixOps  []device.OperatingPoint
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixEnv = exp.NewQuickEnv()
		tech := device.Default65nm()
		c1, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
		if err != nil {
			b.Fatal(err)
		}
		c2, err := components.New(tech, cachecfg.L2(512*cachecfg.KB))
		if err != nil {
			b.Fatal(err)
		}
		fixL1, err = model.Build(c1, charlib.DefaultGrid(), 0)
		if err != nil {
			b.Fatal(err)
		}
		fixL2, err = model.Build(c2, charlib.DefaultGrid(), 0)
		if err != nil {
			b.Fatal(err)
		}
		fixSys = &opt.MemorySystem{TwoLevel: opt.TwoLevel{
			L1: fixL1, L2: fixL2, M1: 0.07, M2: 0.17, Mem: mem.DefaultDDR(),
		}}
		g := charlib.OptimizationGrid()
		fixOps = opt.PairsFromGrid(g.Vths, g.ToxAs)
	})
}

// --- One benchmark per paper artefact --------------------------------------

// BenchmarkFig1Slices regenerates Figure 1 (16KB leakage vs access time
// along the four knob slices).
func BenchmarkFig1Slices(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemeComparison regenerates the Section 4 scheme study
// (tab-schemes): Schemes I, II, III across delay budgets.
func BenchmarkSchemeComparison(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.SchemeComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnobSensitivity regenerates the Section 4 knob study (tab-knob).
func BenchmarkKnobSensitivity(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.KnobSensitivity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL2SingleKnob regenerates the Section 5 single-pair L2 size sweep
// (tab-l2-single).
func BenchmarkL2SingleKnob(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.L2SizeSweep(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL2SplitKnob regenerates the Section 5 split-pair L2 size sweep
// (tab-l2-split).
func BenchmarkL2SplitKnob(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.L2SizeSweep(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL1Sweep regenerates the Section 5 L1 size sweep (tab-l1).
func BenchmarkL1Sweep(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.L1Sweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Tuples regenerates Figure 2 (total energy vs AMAT for the
// five tuple budgets).
func BenchmarkFig2Tuples(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVthOnlyBaseline regenerates the baseline comparison
// (tab-baseline): joint knobs vs Vth-only [7] vs Tox-only.
func BenchmarkVthOnlyBaseline(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.BaselineComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterization measures the HSPICE-substitute sweep + fits for
// one cache (tab-fit).
func BenchmarkCharacterization(b *testing.B) {
	tech := device.Default65nm()
	cache, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Build(cache, charlib.DefaultGrid(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSim measures the architectural simulator building one
// workload's miss matrix (tab-missrates).
func BenchmarkCacheSim(b *testing.B) {
	p := trace.SPEC2000(1)
	l1s := []int{16 * cachecfg.KB}
	l2s := []int{512 * cachecfg.KB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.BuildMissMatrix(p, l1s, l2s, 100_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(200_000*b.N)/b.Elapsed().Seconds(), "accesses/s")
}

func warmMissMatrix(b *testing.B) {
	b.Helper()
	if _, err := fixEnv.MissMatrix(); err != nil {
		b.Fatal(err)
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

// BenchmarkDeviceLeakage measures one transistor-level leakage evaluation of
// a full 16KB cache (the netlist walk the optimizers avoid by fitting).
func BenchmarkDeviceLeakage(b *testing.B) {
	tech := device.Default65nm()
	cache, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
	if err != nil {
		b.Fatal(err)
	}
	a := components.Uniform(device.OP(0.3, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cache.Leakage(a)
	}
}

// BenchmarkModelEval measures one fitted-model evaluation (the optimizer's
// inner loop).
func BenchmarkModelEval(b *testing.B) {
	fixtures(b)
	a := components.Uniform(device.OP(0.3, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fixL1.LeakageW(a) + fixL1.AccessTimeS(a)
	}
}

// BenchmarkSchemeIDP measures the Scheme I multiple-choice-knapsack solve on
// the full optimization grid.
func BenchmarkSchemeIDP(b *testing.B) {
	fixtures(b)
	lo, hi := opt.FeasibleDelayRange(fixL1, fixOps)
	budget := lo + 0.5*(hi-lo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := opt.OptimizeSchemeI(fixL1, fixOps, budget, 0)
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkSchemeIIScan measures the Scheme II Pareto scan.
func BenchmarkSchemeIIScan(b *testing.B) {
	fixtures(b)
	lo, hi := opt.FeasibleDelayRange(fixL1, fixOps)
	budget := lo + 0.5*(hi-lo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := opt.OptimizeSchemeII(fixL1, fixOps, budget)
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkTupleOptimize measures one (2 Tox, 2 Vth) tuple optimization.
func BenchmarkTupleOptimize(b *testing.B) {
	fixtures(b)
	vths := units.GridSteps(0.20, 0.50, 0.05)
	toxs := units.GridSteps(10, 14, 1)
	var mid opt.SystemAssignment
	for i := range mid {
		mid[i] = device.OP(0.35, 12)
	}
	target := fixSys.AMATS(mid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := fixSys.OptimizeTuples(opt.TupleBudget{NTox: 2, NVth: 2}, vths, toxs, target)
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkTraceGen measures synthetic trace generation throughput.
func BenchmarkTraceGen(b *testing.B) {
	g, err := trace.New(trace.SPEC2000(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// BenchmarkSimAccess measures raw simulator throughput on a pre-collected
// trace.
func BenchmarkSimAccess(b *testing.B) {
	g, err := trace.New(trace.SPEC2000(1))
	if err != nil {
		b.Fatal(err)
	}
	accs := trace.Collect(g, 1<<16)
	c := sim.MustNew(cachecfg.L1(16*cachecfg.KB), sim.LRU, sim.WriteBack)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := accs[i&(1<<16-1)]
		c.Access(a.Addr, a.Write)
	}
}

// --- Extension/ablation benchmarks -------------------------------------------

// BenchmarkExtensions regenerates the full extension/ablation bundle
// (model-vs-direct, delay composition, drowsy, temperature, node
// comparison, replacement, area, CPU energy).
func BenchmarkExtensions(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.Extensions(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDrowsyLeakage measures the drowsy-split leakage evaluation.
func BenchmarkDrowsyLeakage(b *testing.B) {
	tech := device.Default65nm()
	cache, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
	if err != nil {
		b.Fatal(err)
	}
	a := components.Uniform(device.OP(0.3, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.LeakageWithDrowsy(a, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPURun measures the program-level metric computation.
func BenchmarkCPURun(b *testing.B) {
	fixtures(b)
	core := cpu.Default65nmCore()
	sys := fixSys.System(
		components.Uniform(device.OP(0.25, 11)),
		components.Uniform(device.OP(0.45, 13)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(sys); err != nil {
			b.Fatal(err)
		}
	}
}
