// Package repro benchmarks regenerate every table and figure of the paper's
// evaluation (see the exp.Experiments registry in internal/exp/all.go for
// the experiment index) and measure the substrates they are built from. Run
// with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/exp"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/units"
)

// Shared fixtures, built once outside the timed regions.
var (
	fixOnce sync.Once
	fixEnv  *exp.Env
	fixL1   *model.CacheModel
	fixL2   *model.CacheModel
	fixSys  *opt.MemorySystem
	fixOps  []device.OperatingPoint
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixEnv = exp.NewQuickEnv()
		tech := device.Default65nm()
		c1, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
		if err != nil {
			b.Fatal(err)
		}
		c2, err := components.New(tech, cachecfg.L2(512*cachecfg.KB))
		if err != nil {
			b.Fatal(err)
		}
		fixL1, err = model.Build(c1, charlib.DefaultGrid(), 0)
		if err != nil {
			b.Fatal(err)
		}
		fixL2, err = model.Build(c2, charlib.DefaultGrid(), 0)
		if err != nil {
			b.Fatal(err)
		}
		fixSys = &opt.MemorySystem{TwoLevel: opt.TwoLevel{
			L1: fixL1, L2: fixL2, M1: 0.07, M2: 0.17, Mem: mem.DefaultDDR(),
		}}
		g := charlib.OptimizationGrid()
		fixOps = opt.PairsFromGrid(g.Vths, g.ToxAs)
	})
}

// --- One benchmark per paper artefact --------------------------------------

// BenchmarkFig1Slices regenerates Figure 1 (16KB leakage vs access time
// along the four knob slices).
func BenchmarkFig1Slices(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.Fig1(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemeComparison regenerates the Section 4 scheme study
// (tab-schemes): Schemes I, II, III across delay budgets.
func BenchmarkSchemeComparison(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.SchemeComparison(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnobSensitivity regenerates the Section 4 knob study (tab-knob).
func BenchmarkKnobSensitivity(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.KnobSensitivity(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL2SingleKnob regenerates the Section 5 single-pair L2 size sweep
// (tab-l2-single).
func BenchmarkL2SingleKnob(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.L2SizeSweep(context.Background(), false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL2SplitKnob regenerates the Section 5 split-pair L2 size sweep
// (tab-l2-split).
func BenchmarkL2SplitKnob(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.L2SizeSweep(context.Background(), true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL1Sweep regenerates the Section 5 L1 size sweep (tab-l1).
func BenchmarkL1Sweep(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.L1Sweep(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Tuples regenerates Figure 2 (total energy vs AMAT for the
// five tuple budgets).
func BenchmarkFig2Tuples(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.Fig2(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVthOnlyBaseline regenerates the baseline comparison
// (tab-baseline): joint knobs vs Vth-only [7] vs Tox-only.
func BenchmarkVthOnlyBaseline(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.BaselineComparison(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterization measures the HSPICE-substitute sweep + fits for
// one cache (tab-fit).
func BenchmarkCharacterization(b *testing.B) {
	tech := device.Default65nm()
	cache, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Build(cache, charlib.DefaultGrid(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSim measures the architectural simulator building one
// workload's miss matrix (tab-missrates).
func BenchmarkCacheSim(b *testing.B) {
	p := trace.SPEC2000(1)
	l1s := []int{16 * cachecfg.KB}
	l2s := []int{512 * cachecfg.KB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.BuildMissMatrix(p, l1s, l2s, 100_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(200_000*b.N)/b.Elapsed().Seconds(), "accesses/s")
}

func warmMissMatrix(b *testing.B) {
	b.Helper()
	if _, err := fixEnv.MissMatrix(); err != nil {
		b.Fatal(err)
	}
}

// --- Sweep engine benchmarks -------------------------------------------------

// gomaxprocsLevels returns the 1/4/NumCPU ladder (deduplicated) at which the
// parallel-vs-sequential benchmarks run.
func gomaxprocsLevels() []int {
	levels := []int{1}
	if runtime.NumCPU() >= 4 || runtime.NumCPU() == 1 {
		// Include 4 even on small machines: goroutine fan-out is still
		// exercised, the OS just timeslices it.
		levels = append(levels, 4)
	}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		levels = append(levels, n)
	}
	return levels
}

// benchAll measures one cold exp.Env.All() pass: every artifact of the
// paper regenerated from scratch (workload simulation, characterization,
// model fits, and all optimizations), at a reduced trace length so a single
// iteration stays in benchmark range.
func benchAll(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := exp.NewQuickEnv()
		env.Accesses = 100_000
		env.Workers = workers
		arts, err := env.All()
		if err != nil {
			b.Fatal(err)
		}
		if len(arts) != len(exp.Experiments()) {
			b.Fatalf("got %d artifacts", len(arts))
		}
	}
}

// BenchmarkAllSequential is the single-goroutine baseline for the full
// evaluation sweep.
func BenchmarkAllSequential(b *testing.B) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	benchAll(b, 1)
}

// BenchmarkAllParallel runs the identical sweep through the worker pool at
// GOMAXPROCS 1, 4 and NumCPU. Output is byte-identical to the sequential
// run (see exp.TestAllParallelByteIdentical); only wall-clock changes.
func BenchmarkAllParallel(b *testing.B) {
	for _, w := range gomaxprocsLevels() {
		b.Run(fmt.Sprintf("gomaxprocs=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			benchAll(b, 0)
		})
	}
}

// BenchmarkSweepThroughput measures the raw engine on a CPU-bound kernel
// (no shared state), isolating pool overhead and scaling from the physics.
func BenchmarkSweepThroughput(b *testing.B) {
	work := func(i int) (float64, error) {
		s := 0.0
		for j := 0; j < 20_000; j++ {
			s += float64(i*j) * 1e-9
		}
		return s, nil
	}
	for _, w := range gomaxprocsLevels() {
		b.Run(fmt.Sprintf("gomaxprocs=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Map(1024, 0, work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMissMatrixParallel measures the architectural simulator building
// the full canonical suite matrices — the dominant cost of a cold run —
// through the per-shard-seeded parallel path.
func BenchmarkMissMatrixParallel(b *testing.B) {
	for _, w := range gomaxprocsLevels() {
		b.Run(fmt.Sprintf("gomaxprocs=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				ms, err := sim.BuildSuiteMatrices(trace.Suites(1), cachecfg.L1Sizes(), cachecfg.L2Sizes(), 50_000)
				if err != nil {
					b.Fatal(err)
				}
				if len(ms) != 3 {
					b.Fatalf("got %d matrices", len(ms))
				}
			}
		})
	}
}

// BenchmarkBatchScenarios measures the multi-scenario batch runner end to
// end on the checked-in example batch.
func BenchmarkBatchScenarios(b *testing.B) {
	f, err := os.Open("examples/scenarios.json")
	if err != nil {
		b.Fatal(err)
	}
	batch, err := scenario.LoadBatch(f)
	f.Close()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunBatch(batch, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

// BenchmarkDeviceLeakage measures one transistor-level leakage evaluation of
// a full 16KB cache (the netlist walk the optimizers avoid by fitting).
func BenchmarkDeviceLeakage(b *testing.B) {
	tech := device.Default65nm()
	cache, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
	if err != nil {
		b.Fatal(err)
	}
	a := components.Uniform(device.OP(0.3, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cache.Leakage(a)
	}
}

// BenchmarkModelEval measures one fitted-model evaluation (the optimizer's
// inner loop).
func BenchmarkModelEval(b *testing.B) {
	fixtures(b)
	a := components.Uniform(device.OP(0.3, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fixL1.LeakageW(a) + fixL1.AccessTimeS(a)
	}
}

// BenchmarkSchemeIDP measures the Scheme I multiple-choice-knapsack solve on
// the full optimization grid.
func BenchmarkSchemeIDP(b *testing.B) {
	fixtures(b)
	lo, hi := opt.FeasibleDelayRange(fixL1, fixOps)
	budget := lo + 0.5*(hi-lo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := opt.OptimizeSchemeI(fixL1, fixOps, budget, 0)
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkSchemeIIScan measures the Scheme II Pareto scan.
func BenchmarkSchemeIIScan(b *testing.B) {
	fixtures(b)
	lo, hi := opt.FeasibleDelayRange(fixL1, fixOps)
	budget := lo + 0.5*(hi-lo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := opt.OptimizeSchemeII(fixL1, fixOps, budget)
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkTupleOptimize measures one (2 Tox, 2 Vth) tuple optimization.
func BenchmarkTupleOptimize(b *testing.B) {
	fixtures(b)
	vths := units.GridSteps(0.20, 0.50, 0.05)
	toxs := units.GridSteps(10, 14, 1)
	var mid opt.SystemAssignment
	for i := range mid {
		mid[i] = device.OP(0.35, 12)
	}
	target := fixSys.AMATS(mid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := fixSys.OptimizeTuples(opt.TupleBudget{NTox: 2, NVth: 2}, vths, toxs, target)
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkTraceGen measures synthetic trace generation throughput.
func BenchmarkTraceGen(b *testing.B) {
	g, err := trace.New(trace.SPEC2000(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// BenchmarkSimAccess measures raw simulator throughput on a pre-collected
// trace.
func BenchmarkSimAccess(b *testing.B) {
	g, err := trace.New(trace.SPEC2000(1))
	if err != nil {
		b.Fatal(err)
	}
	accs := trace.Collect(g, 1<<16)
	c := sim.MustNew(cachecfg.L1(16*cachecfg.KB), sim.LRU, sim.WriteBack)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := accs[i&(1<<16-1)]
		c.Access(a.Addr, a.Write)
	}
}

// --- Extension/ablation benchmarks -------------------------------------------

// BenchmarkExtensions regenerates the full extension/ablation bundle
// (model-vs-direct, delay composition, drowsy, temperature, node
// comparison, replacement, area, CPU energy).
func BenchmarkExtensions(b *testing.B) {
	fixtures(b)
	warmMissMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixEnv.Extensions(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDrowsyLeakage measures the drowsy-split leakage evaluation.
func BenchmarkDrowsyLeakage(b *testing.B) {
	tech := device.Default65nm()
	cache, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
	if err != nil {
		b.Fatal(err)
	}
	a := components.Uniform(device.OP(0.3, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.LeakageWithDrowsy(a, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPURun measures the program-level metric computation.
func BenchmarkCPURun(b *testing.B) {
	fixtures(b)
	core := cpu.Default65nmCore()
	sys := fixSys.System(
		components.Uniform(device.OP(0.25, 11)),
		components.Uniform(device.OP(0.45, 13)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(sys); err != nil {
			b.Fatal(err)
		}
	}
}
